#include "detect/collusion.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "graph/components.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::detect {
namespace {

/// Map each product to the (dense) indices of malicious workers targeting it.
std::map<data::ProductId, std::vector<std::size_t>> product_incidence(
    const data::ReviewTrace& trace,
    const std::vector<data::WorkerId>& workers) {
  std::map<data::ProductId, std::vector<std::size_t>> incidence;
  for (std::size_t idx = 0; idx < workers.size(); ++idx) {
    for (const data::ProductId pid : trace.products_of_worker(workers[idx])) {
      incidence[pid].push_back(idx);
    }
  }
  return incidence;
}

/// Partition (as dense-index component labels) via union-find.
std::vector<std::size_t> partition_union_find(
    const data::ReviewTrace& trace,
    const std::vector<data::WorkerId>& workers) {
  graph::UnionFind uf(workers.size());
  for (const auto& [pid, indices] : product_incidence(trace, workers)) {
    for (std::size_t i = 1; i < indices.size(); ++i) {
      uf.unite(indices[0], indices[i]);
    }
  }
  std::vector<std::size_t> label(workers.size());
  std::map<std::size_t, std::size_t> root_to_label;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] =
        root_to_label.emplace(root, root_to_label.size());
    label[i] = it->second;
  }
  return label;
}

/// Partition via the paper's explicit auxiliary graph + DFS.
std::vector<std::size_t> partition_dfs(
    const data::ReviewTrace& trace,
    const std::vector<data::WorkerId>& workers) {
  graph::Graph g(workers.size());
  std::set<std::pair<std::size_t, std::size_t>> added;
  for (const auto& [pid, indices] : product_incidence(trace, workers)) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      for (std::size_t j = i + 1; j < indices.size(); ++j) {
        const auto edge = std::minmax(indices[i], indices[j]);
        if (added.insert({edge.first, edge.second}).second) {
          g.add_edge(edge.first, edge.second);
        }
      }
    }
  }
  return graph::connected_components(g).component_of;
}

}  // namespace

std::size_t CollusionResult::collusive_worker_count() const {
  std::size_t total = 0;
  for (const Community& c : communities) total += c.members.size();
  return total;
}

CollusionResult cluster_collusive_workers(
    const data::ReviewTrace& trace,
    const std::vector<data::WorkerId>& malicious_workers,
    ClusterBackend backend) {
  CCD_CHECK_MSG(trace.indexes_built(), "clustering requires trace indexes");

  const std::vector<std::size_t> label =
      backend == ClusterBackend::kUnionFind
          ? partition_union_find(trace, malicious_workers)
          : partition_dfs(trace, malicious_workers);

  // Group dense indices by component label.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < malicious_workers.size(); ++i) {
    groups[label[i]].push_back(i);
  }

  CollusionResult result;
  result.community_of.assign(trace.workers().size(), -1);
  for (const auto& [component, indices] : groups) {
    if (indices.size() < 2) {
      result.non_collusive.push_back(malicious_workers[indices.front()]);
      continue;
    }
    Community community;
    std::set<data::ProductId> targets;
    for (const std::size_t idx : indices) {
      const data::WorkerId wid = malicious_workers[idx];
      community.members.push_back(wid);
      for (const data::ProductId pid : trace.products_of_worker(wid)) {
        targets.insert(pid);
      }
    }
    community.targets.assign(targets.begin(), targets.end());
    result.communities.push_back(std::move(community));
  }

  std::sort(result.communities.begin(), result.communities.end(),
            [](const Community& a, const Community& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members.front() < b.members.front();
            });
  for (std::size_t c = 0; c < result.communities.size(); ++c) {
    for (const data::WorkerId wid : result.communities[c].members) {
      result.community_of[wid] = static_cast<std::int32_t>(c);
    }
  }
  std::sort(result.non_collusive.begin(), result.non_collusive.end());
  return result;
}

CollusionResult cluster_ground_truth_malicious(const data::ReviewTrace& trace,
                                               ClusterBackend backend) {
  std::vector<data::WorkerId> malicious;
  for (const data::Worker& w : trace.workers()) {
    if (w.true_class != data::WorkerClass::kHonest) {
      malicious.push_back(w.id);
    }
  }
  return cluster_collusive_workers(trace, malicious, backend);
}

CommunityCensus census(const CollusionResult& result) {
  CommunityCensus c;
  c.communities = result.communities.size();
  if (c.communities == 0) return c;
  std::size_t n2 = 0, n3 = 0, n4 = 0, n5 = 0, n6 = 0, n7to9 = 0, n10 = 0;
  for (const Community& community : result.communities) {
    const std::size_t size = community.members.size();
    c.workers += size;
    if (size == 2) ++n2;
    else if (size == 3) ++n3;
    else if (size == 4) ++n4;
    else if (size == 5) ++n5;
    else if (size == 6) ++n6;
    else if (size <= 9) ++n7to9;
    else ++n10;
  }
  const double total = static_cast<double>(c.communities);
  c.pct_size2 = 100.0 * static_cast<double>(n2) / total;
  c.pct_size3 = 100.0 * static_cast<double>(n3) / total;
  c.pct_size4 = 100.0 * static_cast<double>(n4) / total;
  c.pct_size5 = 100.0 * static_cast<double>(n5) / total;
  c.pct_size6 = 100.0 * static_cast<double>(n6) / total;
  c.pct_size7to9 = 100.0 * static_cast<double>(n7to9) / total;
  c.pct_size10plus = 100.0 * static_cast<double>(n10) / total;
  return c;
}

std::string CommunityCensus::to_string() const {
  std::ostringstream os;
  os << communities << " communities / " << workers << " workers; size% "
     << "2:" << util::format_double(pct_size2, 1)
     << " 3:" << util::format_double(pct_size3, 1)
     << " 4:" << util::format_double(pct_size4, 1)
     << " 5:" << util::format_double(pct_size5, 1)
     << " 6:" << util::format_double(pct_size6, 1)
     << " 7-9:" << util::format_double(pct_size7to9, 1)
     << " >=10:" << util::format_double(pct_size10plus, 1);
  return os.str();
}

}  // namespace ccd::detect
