#include "detect/malicious.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ccd::detect {

MaliciousDetector::MaliciousDetector(const data::ReviewTrace& trace,
                                     const ExpertPanel& experts,
                                     MaliciousDetectorConfig config) {
  CCD_CHECK_MSG(trace.indexes_built(),
                "MaliciousDetector requires trace indexes");
  probability_.assign(trace.workers().size(), config.prior);

  for (const data::Worker& w : trace.workers()) {
    const auto& review_ids = trace.reviews_of_worker(w.id);
    if (review_ids.empty()) continue;

    double signed_deviation = 0.0;
    double unverified = 0.0;
    for (const data::ReviewId rid : review_ids) {
      const data::Review& r = trace.review(rid);
      signed_deviation += r.score - experts.consensus(r.product);
      if (!r.verified) unverified += 1.0;
    }
    const double n = static_cast<double>(review_ids.size());
    signed_deviation /= n;
    unverified /= n;

    // Positive bias relative to consensus is the paid-review signature;
    // logistic squash to a probability, blended with the unverified rate.
    const double core =
        1.0 / (1.0 + std::exp(-config.steepness *
                              (signed_deviation - config.midpoint)));
    double p = (1.0 - config.unverified_weight) * core +
               config.unverified_weight * unverified;

    // Shrink low-evidence workers toward the prior.
    const double confidence = std::min(
        1.0, n / static_cast<double>(config.min_reviews_full_confidence));
    p = confidence * p + (1.0 - confidence) * config.prior;
    probability_[w.id] = std::clamp(p, 0.0, 1.0);
  }
}

double MaliciousDetector::probability(data::WorkerId id) const {
  CCD_CHECK_MSG(id < probability_.size(), "worker id out of range");
  return probability_[id];
}

std::vector<data::WorkerId> MaliciousDetector::flagged(double threshold) const {
  std::vector<data::WorkerId> out;
  for (data::WorkerId id = 0; id < probability_.size(); ++id) {
    if (probability_[id] >= threshold) out.push_back(id);
  }
  return out;
}

double MaliciousDetector::Quality::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MaliciousDetector::Quality::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MaliciousDetector::Quality::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

MaliciousDetector::Quality MaliciousDetector::evaluate(
    const data::ReviewTrace& trace, double threshold) const {
  Quality q;
  for (const data::Worker& w : trace.workers()) {
    const bool truly_malicious = w.true_class != data::WorkerClass::kHonest;
    const bool flagged_malicious = probability_[w.id] >= threshold;
    if (truly_malicious && flagged_malicious) ++q.true_positives;
    else if (!truly_malicious && flagged_malicious) ++q.false_positives;
    else if (truly_malicious && !flagged_malicious) ++q.false_negatives;
    else ++q.true_negatives;
  }
  return q;
}

}  // namespace ccd::detect
