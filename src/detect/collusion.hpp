// Collusive-community clustering (paper §IV-A).
//
// Rule: two malicious workers collude iff they target the same product.
// Build the auxiliary graph over the malicious worker set with an edge per
// shared target; collusive communities are the connected components with
// >= 2 members, found by DFS. Workers in singleton components are the
// non-collusive malicious ("NCM") workers.
//
// Materializing same-product edges is quadratic per product in the worst
// case, so the default backend links via union-find over the
// worker -> product incidence (identical partition, near-linear time); the
// explicit DFS backend is kept to mirror the paper and cross-check.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/trace.hpp"

namespace ccd::detect {

struct Community {
  std::vector<data::WorkerId> members;
  /// Distinct products targeted by the community.
  std::vector<data::ProductId> targets;
};

struct CollusionResult {
  /// Communities with >= 2 members, sorted by descending size.
  std::vector<Community> communities;
  /// Malicious workers not in any community.
  std::vector<data::WorkerId> non_collusive;
  /// community_of[worker] = index into `communities`, or -1.
  std::vector<std::int32_t> community_of;

  std::size_t collusive_worker_count() const;
};

enum class ClusterBackend { kUnionFind, kDfsGraph };

/// Cluster the given malicious workers by the shared-target rule.
CollusionResult cluster_collusive_workers(
    const data::ReviewTrace& trace,
    const std::vector<data::WorkerId>& malicious_workers,
    ClusterBackend backend = ClusterBackend::kUnionFind);

/// Convenience: cluster the ground-truth malicious set.
CollusionResult cluster_ground_truth_malicious(
    const data::ReviewTrace& trace,
    ClusterBackend backend = ClusterBackend::kUnionFind);

/// Community-size census (the paper's Table II): share of communities with
/// size 2, 3, 4, 5, 6, and >= 10 — plus the 7-9 bucket the paper omits.
struct CommunityCensus {
  std::size_t communities = 0;
  std::size_t workers = 0;
  double pct_size2 = 0.0;
  double pct_size3 = 0.0;
  double pct_size4 = 0.0;
  double pct_size5 = 0.0;
  double pct_size6 = 0.0;
  double pct_size7to9 = 0.0;
  double pct_size10plus = 0.0;

  std::string to_string() const;
};

CommunityCensus census(const CollusionResult& result);

}  // namespace ccd::detect
