// Maliciousness-probability estimation (the e_i^mal of Eq. 5).
//
// The paper assumes an external estimator ([14], [15] — behavioural and
// ML detectors). We implement the score-deviation detector those systems
// reduce to on review data: a worker whose ratings consistently deviate from
// expert consensus in a *biased* direction is likely malicious. The detector
// outputs a probability in [0, 1] per worker, the interface Eq. 5 consumes.
#pragma once

#include <vector>

#include "data/trace.hpp"
#include "detect/expert.hpp"

namespace ccd::detect {

struct MaliciousDetectorConfig {
  /// Logistic squash steepness for mean signed deviation.
  double steepness = 2.2;
  /// Signed deviation (worker score - consensus) at which p = 0.5.
  double midpoint = 0.9;
  /// Blend weight for the unverified-purchase signal.
  double unverified_weight = 0.25;
  /// Workers with fewer reviews shrink toward the prior.
  std::size_t min_reviews_full_confidence = 5;
  double prior = 0.05;
};

class MaliciousDetector {
 public:
  MaliciousDetector(const data::ReviewTrace& trace, const ExpertPanel& experts,
                    MaliciousDetectorConfig config = {});

  /// Estimated probability that worker `id` is malicious.
  double probability(data::WorkerId id) const;

  const std::vector<double>& probabilities() const { return probability_; }

  /// Workers whose probability exceeds `threshold`.
  std::vector<data::WorkerId> flagged(double threshold = 0.5) const;

  /// Detection quality against ground truth labels: ROC-style counts at
  /// `threshold`.
  struct Quality {
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    std::size_t true_negatives = 0;
    std::size_t false_negatives = 0;
    double precision() const;
    double recall() const;
    double f1() const;
  };
  Quality evaluate(const data::ReviewTrace& trace, double threshold = 0.5) const;

 private:
  std::vector<double> probability_;
};

}  // namespace ccd::detect
