#include "detect/expert.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ccd::detect {

ExpertPanel::ExpertPanel(const data::ReviewTrace& trace,
                         const data::WorkerMetrics& metrics,
                         ExpertConfig config) {
  CCD_CHECK_MSG(trace.indexes_built(), "ExpertPanel requires trace indexes");

  // Feedback threshold from the distribution of per-worker mean feedback
  // among sufficiently active workers.
  std::vector<double> mean_feedbacks;
  for (const data::Worker& w : trace.workers()) {
    if (trace.reviews_of_worker(w.id).size() >= config.min_reviews) {
      mean_feedbacks.push_back(metrics.mean_feedback_of_worker(w.id));
    }
  }
  const double feedback_threshold =
      mean_feedbacks.empty()
          ? 0.0
          : util::percentile(mean_feedbacks, config.feedback_percentile);

  expert_flags_.assign(trace.workers().size(), false);
  for (const data::Worker& w : trace.workers()) {
    if (config.trust_badges && w.expert_badge) {
      expert_flags_[w.id] = true;
      experts_.push_back(w.id);
      continue;
    }
    const auto& review_ids = trace.reviews_of_worker(w.id);
    if (review_ids.size() < config.min_reviews) continue;
    if (metrics.mean_feedback_of_worker(w.id) < feedback_threshold) continue;
    double deviation = 0.0;
    for (const data::ReviewId rid : review_ids) {
      const data::Review& r = trace.review(rid);
      deviation += std::abs(r.score - trace.product(r.product).true_quality);
    }
    deviation /= static_cast<double>(review_ids.size());
    if (deviation > config.max_score_deviation) continue;
    expert_flags_[w.id] = true;
    experts_.push_back(w.id);
  }

  // Per-product expert consensus.
  product_score_sum_.assign(trace.products().size(), 0.0);
  product_score_count_.assign(trace.products().size(), 0);
  util::Accumulator global;
  for (const data::Review& r : trace.reviews()) {
    if (!expert_flags_[r.worker]) continue;
    product_score_sum_[r.product] += r.score;
    ++product_score_count_[r.product];
    global.add(r.score);
  }
  if (global.count() > 0) global_mean_ = global.mean();
}

bool ExpertPanel::is_expert(data::WorkerId id) const {
  CCD_CHECK_MSG(id < expert_flags_.size(), "worker id out of range");
  return expert_flags_[id];
}

std::optional<double> ExpertPanel::expert_score(data::ProductId id) const {
  CCD_CHECK_MSG(id < product_score_count_.size(), "product id out of range");
  if (product_score_count_[id] == 0) return std::nullopt;
  return product_score_sum_[id] / static_cast<double>(product_score_count_[id]);
}

double ExpertPanel::consensus(data::ProductId id) const {
  const std::optional<double> score = expert_score(id);
  return score ? *score : global_mean_;
}

double ExpertPanel::coverage() const {
  if (product_score_count_.empty()) return 0.0;
  std::size_t covered = 0;
  for (const std::size_t c : product_score_count_) {
    if (c > 0) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(product_score_count_.size());
}

}  // namespace ccd::detect
