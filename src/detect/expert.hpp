// Expert identification and per-product expert-consensus ("ground truth")
// scores.
//
// The paper defines experts as "workers whose accuracy and positive
// endorsements (along with reputation) are both higher than the thresholds
// specified by the system", and uses the average expert review score l̄ as
// the ground truth each worker's review accuracy is measured against
// (Eq. 5).
#pragma once

#include <optional>
#include <vector>

#include "data/metrics.hpp"
#include "data/trace.hpp"

namespace ccd::detect {

struct ExpertConfig {
  /// Minimum number of reviews before a worker can qualify.
  std::size_t min_reviews = 5;
  /// Feedback threshold as a percentile of per-worker mean feedback.
  double feedback_percentile = 75.0;
  /// Maximum mean |score - true quality| for a candidate (accuracy gate).
  double max_score_deviation = 0.6;
  /// Workers with the platform expert badge qualify regardless.
  bool trust_badges = true;
};

class ExpertPanel {
 public:
  /// Identifies the expert set from the trace.
  ExpertPanel(const data::ReviewTrace& trace,
              const data::WorkerMetrics& metrics, ExpertConfig config = {});

  bool is_expert(data::WorkerId id) const;
  const std::vector<data::WorkerId>& experts() const { return experts_; }

  /// Mean expert score for a product; nullopt if no expert reviewed it.
  std::optional<double> expert_score(data::ProductId id) const;

  /// Expert consensus with fallback: products no expert covered fall back to
  /// the global mean expert score (the requester's best prior).
  double consensus(data::ProductId id) const;

  /// Fraction of products covered by at least one expert review.
  double coverage() const;

 private:
  std::vector<bool> expert_flags_;
  std::vector<data::WorkerId> experts_;
  std::vector<double> product_score_sum_;
  std::vector<std::size_t> product_score_count_;
  double global_mean_ = 3.0;
};

}  // namespace ccd::detect
