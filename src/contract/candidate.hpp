// Candidate-contract construction (paper §IV-C, "Part 2").
//
// For a target effort interval [(k-1)δ, kδ), build the candidate contract
// ξ^(k): slopes on intervals 1..k follow the recurrence of Eq. 39/40 — each
// slope is the smallest value keeping the worker's interval-best utility
// strictly increasing toward interval k (Eq. 36–38) — and the contract is
// flat beyond kδ so additional effort earns nothing.
//
// Recurrence details (with s_l = psi'(lδ), all > 0 on the usable domain):
//
//   alpha_0 = beta / s_0 - omega                       (seed; see DESIGN.md)
//   eps_l   = 4 beta r2^2 δ^2 / (s_{l-1}^2 s_l)        (Eq. 40, division
//                                                       implied by Eq. 42)
//   alpha_l = beta^2 / ((alpha_{l-1} + omega) s_{l-1}^2) + eps_l - omega
//
// The recurrence maintains alpha_l + omega > 0, and alpha_l always lands in
// Lemma 4.1's Case-III window (beta/s_{l-1} - omega, beta/s_l - omega).
// When omega is large the raw slope can be negative — the worker's own
// feedback motive already drives the effort — so the *applied* slope is
// clamped at 0 to keep the contract monotone (Eq. 9); the raw value still
// feeds the recurrence.
//
// Crucially, nothing in the recurrence reads k: candidate k's slopes are
// the prefix alpha_1..alpha_k of one k-independent sequence. The whole
// k-sweep therefore shares a single recurrence pass (candidate_recurrence),
// and build_design_table materializes each candidate as a payment prefix —
// bitwise-identical to building each candidate from scratch, without the
// former O(m^2) recomputation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "contract/contract.hpp"
#include "contract/worker_response.hpp"
#include "effort/effort_model.hpp"

namespace ccd::contract {

/// Diagnostics from a candidate build (exposed for tests/analysis).
struct CandidateBuildInfo {
  std::vector<double> raw_slopes;      ///< recurrence values alpha_1..alpha_k
  std::vector<double> applied_slopes;  ///< max(raw, 0)
  std::vector<double> epsilons;        ///< eps_1..eps_k
  /// 1 where the capped Case-III window collapsed (see candidate_recurrence)
  /// and the epsilon floor was substituted for the Eq. 40 value.
  std::vector<std::uint8_t> degenerate_window;

  bool any_degenerate() const {
    for (const std::uint8_t flag : degenerate_window) {
      if (flag != 0) return true;
    }
    return false;
  }
};

/// The k-independent Eq. 39/40 recurrence evaluated for intervals
/// 1..k_max, plus the cumulative payments along the ascending branch.
/// Candidate k's payments are pay_prefix[0..k] followed by a flat tail.
/// The struct is an out-parameter so repeated sweeps (one per spec class)
/// reuse vector capacity instead of reallocating per candidate.
struct CandidateRecurrence {
  std::vector<double> raw_slopes;                ///< alpha_1..alpha_{k_max}
  std::vector<double> applied_slopes;            ///< max(raw, 0)
  std::vector<double> epsilons;                  ///< eps_1..eps_{k_max}
  std::vector<std::uint8_t> degenerate_window;   ///< per-l degeneracy flags
  std::vector<double> pay_prefix;                ///< payments[0..k_max]
};

/// Run the slope recurrence for intervals 1..k_max on the grid
/// {0, δ, ..., mδ}. Requires 1 <= k_max <= m and psi strictly increasing on
/// [0, mδ] (throws ccd::ContractError otherwise).
///
/// Epsilon handling (`cap_epsilon = true`): Eq. 40's epsilon is capped at a
/// small fraction of the remaining Case-III window so coarse grids cannot
/// push the slope to the expensive Case-II edge. When the window itself is
/// degenerate — non-positive after rounding, or so narrow that base + eps
/// would not move past base in double precision — Eq. 36's *strict*
/// preference would silently break (the former code let eps go
/// non-positive here). Such intervals instead take a small positive
/// relative floor and are flagged in `degenerate_window`.
void candidate_recurrence(const effort::QuadraticEffort& psi, double delta,
                          std::size_t m, std::size_t k_max,
                          const WorkerIncentives& inc, bool cap_epsilon,
                          CandidateRecurrence& out);

/// Build ξ^(k) on the grid {0, δ, ..., mδ}. Requires 1 <= k <= m and psi
/// strictly increasing on [0, mδ] (throws ccd::ContractError otherwise).
/// `cap_epsilon = false` uses the paper's raw Eq. 40 epsilon instead of the
/// window-capped value — exposed for the ablation that demonstrates why the
/// cap is needed on coarse grids (see bench_ablation_epsilon and
/// EXPERIMENTS.md "Known deviations").
Contract build_candidate(const effort::QuadraticEffort& psi, double delta,
                         std::size_t m, std::size_t k,
                         const WorkerIncentives& inc,
                         CandidateBuildInfo* info = nullptr,
                         bool cap_epsilon = true);

}  // namespace ccd::contract
