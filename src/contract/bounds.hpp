// Analytic guarantees: Lemma 4.2/4.3 compensation bounds and the
// Theorem 4.1 requester-utility bounds.
//
// We implement the dimensionally consistent general forms (the paper's
// statements absorb w and some beta/mu factors under its beta = 1 setting,
// and are stated for the honest omega = 0 case; see DESIGN.md "Paper typos
// we correct"). The omega generalization follows from the same individual-
// rationality argument as the paper's Lemma 4.3 proof: at best response
// y in [(k-1)δ, kδ) the worker's utility c - beta y + omega psi(y) must be
// at least the zero-effort outside option omega psi(0), so
//
//   c >= beta (k-1) δ - omega (psi(kδ) - psi(0)),   floored at 0,
//
// which reduces to the paper's beta (k-1) δ when omega = 0. The upper bound
// on requester utility additionally accounts for the free-rider region: a
// worker with omega > 0 exerts effort up to psi'(y) = beta/omega with zero
// pay, so w psi(y_free) is always achievable-looking and must be included.
#pragma once

#include <cstddef>

#include "effort/effort_model.hpp"

namespace ccd::contract {

/// Lemma 4.2: upper bound on the compensation the candidate ξ^(k) pays.
double lemma42_compensation_upper(const effort::QuadraticEffort& psi,
                                  double beta, double delta, std::size_t k);

/// Lemma 4.3 (omega-generalized): lower bound on any compensation that
/// places the worker's best response in [(k-1)δ, kδ).
double lemma43_compensation_lower(const effort::QuadraticEffort& psi,
                                  double beta, double delta, std::size_t k,
                                  double omega = 0.0);

/// Theorem 4.1 upper bound on the per-worker requester utility with m
/// intervals, feedback weight w, and compensation weight mu.
double theorem41_upper_bound(const effort::QuadraticEffort& psi, double w,
                             double mu, double beta, double delta,
                             std::size_t m, double omega = 0.0);

/// Theorem 4.1 lower bound at the selected interval k_opt.
double theorem41_lower_bound(const effort::QuadraticEffort& psi, double w,
                             double mu, double beta, double delta,
                             std::size_t k_opt);

}  // namespace ccd::contract
