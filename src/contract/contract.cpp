#include "contract/contract.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::contract {

Contract::Contract(double delta, std::vector<double> feedback_knots,
                   std::vector<double> payments)
    : delta_(delta),
      knots_(std::move(feedback_knots)),
      payments_(std::move(payments)) {
  CCD_CHECK_MSG(delta_ > 0.0, "contract delta must be positive");
  CCD_CHECK_MSG(knots_.size() == payments_.size(),
                "contract knots/payments size mismatch");
  CCD_CHECK_MSG(knots_.size() >= 2, "contract needs at least two knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    CCD_CHECK_MSG(knots_[i] > knots_[i - 1],
                  "contract feedback knots must be strictly increasing");
  }
  for (std::size_t i = 0; i < payments_.size(); ++i) {
    CCD_CHECK_MSG(payments_[i] >= 0.0, "contract payments must be >= 0");
    if (i > 0) {
      CCD_CHECK_MSG(payments_[i] >= payments_[i - 1],
                    "contract payments must be non-decreasing (Eq. 9)");
    }
  }
}

Contract Contract::on_effort_grid(const effort::QuadraticEffort& psi,
                                  double delta,
                                  std::vector<double> payments) {
  CCD_CHECK_MSG(payments.size() >= 2,
                "on_effort_grid needs at least two payments (m >= 1)");
  const std::size_t m = payments.size() - 1;
  CCD_CHECK_MSG(psi.increasing_on(delta * static_cast<double>(m)),
                "effort grid extends past the peak of psi");
  std::vector<double> knots(m + 1);
  for (std::size_t l = 0; l <= m; ++l) {
    knots[l] = psi(delta * static_cast<double>(l));
  }
  return Contract(delta, std::move(knots), std::move(payments));
}

std::size_t Contract::intervals() const {
  return payments_.empty() ? 0 : payments_.size() - 1;
}

double Contract::pay(double feedback) const {
  if (is_zero()) return 0.0;
  if (feedback <= knots_.front()) return payments_.front();
  if (feedback >= knots_.back()) return payments_.back();
  // Find the interval [d_{l-1}, d_l) containing the feedback.
  const auto it = std::upper_bound(knots_.begin(), knots_.end(), feedback);
  const std::size_t l = static_cast<std::size_t>(it - knots_.begin());
  const double t = (feedback - knots_[l - 1]) / (knots_[l] - knots_[l - 1]);
  return payments_[l - 1] * (1.0 - t) + payments_[l] * t;
}

double Contract::pay_at_effort(const effort::QuadraticEffort& psi,
                               double y) const {
  return pay(psi(y));
}

double Contract::slope(std::size_t l) const {
  CCD_CHECK_MSG(l >= 1 && l <= intervals(), "contract slope index out of range");
  return (payments_[l] - payments_[l - 1]) / (knots_[l] - knots_[l - 1]);
}

double Contract::payment(std::size_t l) const {
  CCD_CHECK_MSG(l < payments_.size(), "contract payment index out of range");
  return payments_[l];
}

double Contract::knot(std::size_t l) const {
  CCD_CHECK_MSG(l < knots_.size(), "contract knot index out of range");
  return knots_[l];
}

double Contract::max_payment() const {
  return payments_.empty() ? 0.0 : payments_.back();
}

std::string Contract::to_string(int precision) const {
  if (is_zero()) return "Contract{zero}";
  std::ostringstream os;
  os << "Contract{delta=" << util::format_double(delta_, precision) << ", ";
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (i > 0) os << " ";
    os << '(' << util::format_double(knots_[i], precision) << "->"
       << util::format_double(payments_[i], precision) << ')';
  }
  os << '}';
  return os.str();
}

}  // namespace ccd::contract
