#include "contract/fleet_soa.hpp"

#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ccd::contract {

FleetSoA FleetSoA::from_specs(const std::vector<SubproblemSpec>& specs) {
  FleetSoA fleet;
  const std::size_t n = specs.size();
  fleet.weight.resize(n);
  fleet.class_of.resize(n);

  std::unordered_map<DesignCacheKey, std::size_t, DesignCacheKeyHash>
      class_of_key;
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].validate();
    const DesignCacheKey key = DesignCacheKey::of(specs[i]);
    const auto [it, inserted] = class_of_key.emplace(key, fleet.classes());
    if (inserted) {
      fleet.r2.push_back(key.r2);
      fleet.r1.push_back(key.r1);
      fleet.r0.push_back(key.r0);
      fleet.beta.push_back(key.beta);
      fleet.omega.push_back(key.omega);
      fleet.mu.push_back(key.mu);
      fleet.intervals.push_back(static_cast<std::size_t>(key.intervals));
      fleet.domain.push_back(key.domain);
      fleet.first_positive.push_back(npos);
      counts.push_back(0);
    }
    const std::size_t c = it->second;
    fleet.class_of[i] = c;
    fleet.weight[i] = specs[i].weight;
    ++counts[c];
    if (specs[i].weight > 0.0 && fleet.first_positive[c] == npos) {
      fleet.first_positive[c] = i;
    }
  }

  const std::size_t classes = fleet.classes();
  fleet.class_begin.assign(classes + 1, 0);
  for (std::size_t c = 0; c < classes; ++c) {
    fleet.class_begin[c + 1] = fleet.class_begin[c] + counts[c];
  }
  fleet.order.resize(n);
  fleet.grouped_weight.resize(n);
  std::vector<std::size_t> cursor(fleet.class_begin.begin(),
                                  fleet.class_begin.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = cursor[fleet.class_of[i]]++;
    fleet.order[pos] = i;
    fleet.grouped_weight[pos] = fleet.weight[i];
  }
  return fleet;
}

SubproblemSpec FleetSoA::class_spec(std::size_t c) const {
  SubproblemSpec spec;
  spec.psi = effort::QuadraticEffort(r2[c], r1[c], r0[c]);
  spec.incentives.beta = beta[c];
  spec.incentives.omega = omega[c];
  spec.weight = 1.0;
  spec.mu = mu[c];
  spec.intervals = intervals[c];
  spec.effort_domain = domain[c];  // stored resolved, always > 0
  return spec;
}

SubproblemSpec FleetSoA::worker_spec(std::size_t i) const {
  SubproblemSpec spec = class_spec(class_of[i]);
  spec.weight = weight[i];
  return spec;
}

FleetTableSet acquire_fleet_tables(
    const FleetSoA& fleet, DesignCache& cache, util::ThreadPool& pool,
    util::metrics::Histogram* sweep_histogram,
    const util::CancellationToken* cancel,
    const std::vector<SubproblemSpec>* original_specs) {
  FleetTableSet ts;
  ts.tables.assign(fleet.classes(), nullptr);

  std::vector<std::size_t> cacheable;
  cacheable.reserve(fleet.classes());
  for (std::size_t c = 0; c < fleet.classes(); ++c) {
    if (fleet.first_positive[c] != FleetSoA::npos) cacheable.push_back(c);
  }

  std::atomic<std::size_t> computed{0};
  std::atomic<std::uint64_t> steps_computed{0};
  pool.parallel_for(cacheable.size(), [&](std::size_t g) {
    const std::size_t c = cacheable[g];
    const std::size_t rep = fleet.first_positive[c];
    bool was_hit = false;
    {
      // Span of this class's design (see BatchOptions::sweep_histogram; a
      // cache hit records the cheap lookup instead of a sweep).
      util::metrics::ScopedTimer timer(sweep_histogram);
      if (original_specs != nullptr) {
        ts.tables[c] = cache.table_for((*original_specs)[rep], &was_hit);
      } else {
        ts.tables[c] = cache.table_for(fleet.worker_spec(rep), &was_hit);
      }
    }
    if (!was_hit) {
      computed.fetch_add(1, std::memory_order_relaxed);
      steps_computed.fetch_add(fleet.intervals[c], std::memory_order_relaxed);
    }
  }, cancel);
  ts.sweeps_computed = computed.load();
  ts.sweep_steps_computed = steps_computed.load();
  return ts;
}

namespace {

// Both epilogues scatter a worker's BestResponse fields into the SoA
// output.
void write_response(FleetDesignResult& out, std::size_t i,
                    const BestResponse& response) {
  out.effort[i] = response.effort;
  out.worker_utility[i] = response.utility;
  out.feedback[i] = response.feedback;
  out.compensation[i] = response.compensation;
  out.response_interval[i] = response.interval;
}

// design_contracts_batch's per-call accounting, computed from the fleet
// arrays (see that function's comments for the rationale). Returns the
// per-call snapshot and the `extra` delta the caller records into the
// cache for per-worker resolutions served without touching the map.
struct FleetCallStats {
  DesignCacheStats call;
  DesignCacheStats extra;
};

FleetCallStats fleet_call_stats(const FleetSoA& fleet,
                                const std::vector<std::uint8_t>& resolved,
                                const FleetTableSet& ts) {
  std::size_t cacheable = 0;
  std::size_t cacheable_steps = 0;
  for (std::size_t i = 0; i < fleet.workers(); ++i) {
    if (fleet.weight[i] <= 0.0 || !resolved[i]) continue;
    ++cacheable;
    cacheable_steps += fleet.intervals[fleet.class_of[i]];
  }

  FleetCallStats out;
  out.call.lookups = cacheable;
  out.call.misses = ts.sweeps_computed;
  out.call.hits = out.call.lookups > out.call.misses
                      ? out.call.lookups - out.call.misses : 0;
  out.call.sweep_steps_computed =
      static_cast<std::size_t>(ts.sweep_steps_computed);
  out.call.sweep_steps_avoided =
      cacheable_steps > out.call.sweep_steps_computed
          ? cacheable_steps - out.call.sweep_steps_computed : 0;

  std::size_t classes_ran = 0;
  std::size_t classes_ran_steps = 0;
  for (std::size_t c = 0; c < fleet.classes(); ++c) {
    if (fleet.first_positive[c] == FleetSoA::npos) continue;
    if (ts.tables[c] == nullptr) continue;  // sweep skipped by cancellation
    ++classes_ran;
    classes_ran_steps += fleet.intervals[c];
  }
  out.extra.lookups = cacheable > classes_ran ? cacheable - classes_ran : 0;
  out.extra.hits = out.extra.lookups;
  out.extra.sweep_steps_avoided =
      cacheable_steps > classes_ran_steps ? cacheable_steps - classes_ran_steps
                                          : 0;
  return out;
}

}  // namespace

DesignResult FleetDesignResult::result_at(const FleetSoA& fleet,
                                          std::size_t i) const {
  const SubproblemSpec spec = fleet.worker_spec(i);
  if (spec.weight <= 0.0) {
    const DesignTable empty;
    return resolve_design(spec, empty);
  }
  const std::shared_ptr<const DesignTable>& table = tables[fleet.class_of[i]];
  CCD_CHECK_MSG(table != nullptr,
                "result_at: worker's class sweep was skipped (cancelled)");
  return resolve_design(spec, *table);
}

FleetDesignResult design_fleet(const FleetSoA& fleet,
                               const FleetOptions& options,
                               DesignCacheStats* stats) {
  DesignCache local_cache;
  DesignCache& cache = options.cache ? *options.cache : local_cache;
  util::ThreadPool& pool = options.pool ? *options.pool : util::shared_pool();
  const std::size_t n = fleet.workers();

  FleetDesignResult out;
  out.k_opt.assign(n, 0);
  out.requester_utility.assign(n, 0.0);
  out.upper_bound.assign(n, 0.0);
  out.lower_bound.assign(n, 0.0);
  out.effort.assign(n, 0.0);
  out.worker_utility.assign(n, 0.0);
  out.feedback.assign(n, 0.0);
  out.compensation.assign(n, 0.0);
  out.response_interval.assign(n, 0);
  out.excluded.assign(n, 0);
  out.resolved.assign(n, 0);

  FleetTableSet ts = acquire_fleet_tables(fleet, cache, pool,
                                          options.sweep_histogram,
                                          options.cancel);
  out.tables = ts.tables;

  if (resolve_kernel(options.kernel) == SweepKernel::kScalar) {
    // Reference epilogue: one resolve_design per worker, scattered into
    // the SoA arrays. Bitwise design_contract semantics on every build.
    pool.parallel_for(n, [&](std::size_t i) {
      const SubproblemSpec spec = fleet.worker_spec(i);
      DesignResult result;
      if (spec.weight <= 0.0) {
        const DesignTable empty;
        result = resolve_design(spec, empty);
      } else if (ts.tables[fleet.class_of[i]] != nullptr) {
        result = resolve_design(spec, *ts.tables[fleet.class_of[i]]);
      } else {
        return;  // class sweep skipped by cancellation
      }
      out.k_opt[i] = result.k_opt;
      out.requester_utility[i] = result.requester_utility;
      out.upper_bound[i] = result.upper_bound;
      out.lower_bound[i] = result.lower_bound;
      write_response(out, i, result.response);
      out.excluded[i] = result.excluded ? 1 : 0;
      out.resolved[i] = 1;
    }, options.cancel);
  } else {
    // Vectorized epilogue: per class, build the tableau once and resolve
    // the class's contiguous weight slice in one kernel pass. Classes
    // write disjoint output indices, so they parallelize freely.
    pool.parallel_for(fleet.classes(), [&](std::size_t c) {
      const std::size_t begin = fleet.class_begin[c];
      const std::size_t count = fleet.class_begin[c + 1] - begin;
      if (count == 0) return;
      const std::shared_ptr<const DesignTable>& table = ts.tables[c];
      const bool has_positive = fleet.first_positive[c] != FleetSoA::npos;
      if (table == nullptr && has_positive) {
        return;  // sweep skipped by cancellation: workers stay unresolved
      }
      const SubproblemSpec cls = fleet.class_spec(c);

      if (table == nullptr) {
        // Every member is weight-excluded: the §V zero contract, whose
        // best response is class-wide (computed once, not per worker).
        const BestResponse zero =
            best_response(Contract(), cls.psi, cls.incentives);
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t i = fleet.order[begin + j];
          write_response(out, i, zero);
          out.excluded[i] = 1;
          out.resolved[i] = 1;
        }
        return;
      }

      ScratchArena arena;
      const ClassTableau tableau = build_class_tableau(cls, *table, arena);
      double* utility = arena.doubles(count);
      double* upper = arena.doubles(count);
      std::vector<std::size_t> k_opt(count);
      resolve_class(tableau, fleet.grouped_weight.data() + begin, count,
                    ResolveOut{k_opt.data(), utility, upper},
                    options.force_portable);

      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t i = fleet.order[begin + j];
        const double w = fleet.grouped_weight[begin + j];
        if (w <= 0.0 || utility[j] < 0.0) {
          // Weight exclusion or the §V max_k utility < 0 fallback; the
          // zero-contract response is shared class-wide.
          write_response(out, i, tableau.zero_response);
          out.excluded[i] = 1;
        } else {
          const std::size_t k = k_opt[j];
          write_response(out, i, table->candidates[k - 1].response);
          out.k_opt[i] = k;
          out.requester_utility[i] = utility[j];
          out.upper_bound[i] = upper[j];
          out.lower_bound[i] = w * tableau.lb_feedback[k - 1] -
                               tableau.mu * tableau.lb_pay[k - 1];
        }
        out.resolved[i] = 1;
      }
    }, options.cancel);
  }

  const FleetCallStats fcs = fleet_call_stats(fleet, out.resolved, ts);
  if (stats) *stats = fcs.call;
  cache.record(fcs.extra);
  return out;
}

std::vector<DesignResult> design_contracts_batch(
    const std::vector<SubproblemSpec>& specs, const BatchOptions& options,
    DesignCacheStats* stats) {
  DesignCache local_cache;
  DesignCache& cache = options.cache ? *options.cache : local_cache;
  util::ThreadPool& pool = options.pool ? *options.pool : util::shared_pool();

  const std::size_t n = specs.size();
  std::vector<DesignResult> results(n);
  std::vector<std::uint8_t> resolved_local;
  std::vector<std::uint8_t>& resolved =
      options.resolved ? *options.resolved : resolved_local;
  resolved.assign(n, 0);

  // SoA grouping: a class is the canonical weight-excluded cache key, in
  // first-occurrence order, with each class's workers gathered into a
  // contiguous CSR slice. Validates every spec in input order.
  const FleetSoA fleet = FleetSoA::from_specs(specs);

  // One k-sweep per class that has a positive-weight worker, distinct
  // classes in parallel. The representative specs are the caller's own
  // objects, so what reaches cache.table_for is unchanged from the
  // pre-SoA batch (bit patterns and all).
  const FleetTableSet ts = acquire_fleet_tables(fleet, cache, pool,
                                                options.sweep_histogram,
                                                options.cancel, &specs);

  if (resolve_kernel(options.kernel) == SweepKernel::kScalar) {
    // Reference epilogue: per-worker resolve_design on the original spec,
    // bitwise-identical to design_contract(specs[i]) on every build.
    // Classes whose sweep was skipped by cancellation have a null table;
    // their workers stay unresolved (results default-constructed).
    static const DesignTable kEmptyTable{};
    pool.parallel_for(n, [&](std::size_t i) {
      if (specs[i].weight <= 0.0) {
        // resolve_design never reads the table when weight <= 0.
        results[i] = resolve_design(specs[i], kEmptyTable);
      } else if (ts.tables[fleet.class_of[i]] != nullptr) {
        results[i] = resolve_design(specs[i], *ts.tables[fleet.class_of[i]]);
      } else {
        return;
      }
      resolved[i] = 1;
    }, options.cancel);
  } else {
    // Vectorized epilogue: one kernel pass per class, materialized back to
    // AoS DesignResults with the per-k diagnostics rebuilt from the
    // tableau columns via the scalar expressions. No fault point on this
    // path (see ksweep.hpp).
    pool.parallel_for(fleet.classes(), [&](std::size_t c) {
      const std::size_t begin = fleet.class_begin[c];
      const std::size_t count = fleet.class_begin[c + 1] - begin;
      if (count == 0) return;
      const bool has_positive = fleet.first_positive[c] != FleetSoA::npos;
      const std::shared_ptr<const DesignTable>& table = ts.tables[c];
      if (table == nullptr && has_positive) {
        return;  // sweep skipped by cancellation: workers stay unresolved
      }
      const SubproblemSpec cls = fleet.class_spec(c);

      if (table == nullptr) {
        // Every member is weight-excluded; the zero-contract response is
        // class-wide (weight-independent), computed once.
        const BestResponse zero =
            best_response(Contract(), cls.psi, cls.incentives);
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t i = fleet.order[begin + j];
          results[i].excluded = true;
          results[i].response = zero;
          resolved[i] = 1;
        }
        return;
      }

      ScratchArena arena;
      const ClassTableau tableau = build_class_tableau(cls, *table, arena);
      const std::size_t m = tableau.m;
      double* utility = arena.doubles(count);
      double* upper = arena.doubles(count);
      std::vector<std::size_t> k_opt(count);
      resolve_class(tableau, fleet.grouped_weight.data() + begin, count,
                    ResolveOut{k_opt.data(), utility, upper});

      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t i = fleet.order[begin + j];
        const double w = fleet.grouped_weight[begin + j];
        DesignResult& result = results[i];
        if (w <= 0.0) {
          // Weight exclusion carries no per-k diagnostics (matching
          // resolve_design); contract stays the default zero contract.
          result.excluded = true;
          result.response = tableau.zero_response;
        } else {
          result.utility_by_k.resize(m);
          result.pay_by_k.assign(tableau.pay, tableau.pay + m);
          for (std::size_t kk = 0; kk < m; ++kk) {
            result.utility_by_k[kk] =
                w * tableau.feedback[kk] - tableau.mu * tableau.pay[kk];
          }
          if (utility[j] < 0.0) {
            // §V fallback: zero contract, diagnostics kept.
            result.excluded = true;
            result.response = tableau.zero_response;
          } else {
            const std::size_t k = k_opt[j];
            const CandidateOutcome& candidate = table->candidates[k - 1];
            result.contract = candidate.contract;
            result.response = candidate.response;
            result.k_opt = k;
            result.requester_utility = utility[j];
            result.upper_bound = upper[j];
            result.lower_bound = w * tableau.lb_feedback[k - 1] -
                                 tableau.mu * tableau.lb_pay[k - 1];
          }
        }
        resolved[i] = 1;
      }
    }, options.cancel);
  }

  const FleetCallStats fcs = fleet_call_stats(fleet, resolved, ts);
  if (stats) *stats = fcs.call;
  cache.record(fcs.extra);
  return results;
}

}  // namespace ccd::contract
