// The piecewise-linear contract of §III-A.
//
// A contract is defined on an effort grid {0, δ, 2δ, ..., mδ}: knot l sits
// at feedback d_l = ψ(lδ) and pays x_l, with compensation interpolated
// linearly between knots (Eq. 6) and saturating outside [d_0, d_m]. The
// decision variables of the bilevel program are exactly the x_l.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "effort/effort_model.hpp"
#include "math/piecewise.hpp"

namespace ccd::contract {

class Contract {
 public:
  /// A contract that pays nothing regardless of feedback (exclusion).
  Contract() = default;

  /// `feedback_knots` strictly increasing (d_0..d_m), `payments` same size,
  /// non-negative and non-decreasing (monotonicity constraint Eq. 9/10).
  /// `delta` is the effort grid width the knots were generated from.
  Contract(double delta, std::vector<double> feedback_knots,
           std::vector<double> payments);

  /// Build knots from the effort model: d_l = psi(l * delta), l = 0..m,
  /// where m = payments.size() - 1.
  static Contract on_effort_grid(const effort::QuadraticEffort& psi,
                                 double delta, std::vector<double> payments);

  bool is_zero() const { return payments_.empty(); }

  /// Number of effort intervals m (0 for the zero contract).
  std::size_t intervals() const;

  double delta() const { return delta_; }

  /// Compensation for feedback q (Eq. 1 / Eq. 6, saturating).
  double pay(double feedback) const;

  /// xi(y) = pay(psi(y)) — compensation as a function of effort.
  double pay_at_effort(const effort::QuadraticEffort& psi, double y) const;

  /// Contract slope alpha_l on [d_{l-1}, d_l); l in [1, intervals()].
  double slope(std::size_t l) const;

  /// Payment at knot l (x_l); l in [0, intervals()].
  double payment(std::size_t l) const;

  /// Feedback knot d_l; l in [0, intervals()].
  double knot(std::size_t l) const;

  /// Largest payment (the saturation level x_m); 0 for the zero contract.
  double max_payment() const;

  std::string to_string(int precision = 4) const;

 private:
  double delta_ = 0.0;
  std::vector<double> knots_;
  std::vector<double> payments_;
};

}  // namespace ccd::contract
