// Vectorized per-worker resolve for the fleet design path.
//
// Every worker of one spec class shares the same weight-independent
// DesignTable; resolving a worker is then three per-k reductions over the
// class's tables — the Eq. 43 argmax of w * feedback_k - mu * pay_k, the
// Theorem 4.1 upper-bound max, and a gather for the lower bound at k_opt.
// With the class's per-k columns laid out contiguously (ClassTableau) and
// the workers' weights contiguous (FleetSoA), one SIMD pass resolves four
// workers per instruction on AVX2; a portable scalar loop with identical
// semantics serves every other build (the compiler autovectorizes it where
// it can) and the AVX2 tail.
//
// Kernel selection is two-level: at build time the AVX2 kernel is only
// compiled on x86-64 GCC/Clang (per-function target attributes — no global
// -mavx2, so the rest of the library stays baseline-ISA); at run time it is
// used only when the CPU reports AVX2. Both kernels use only multiplies,
// subtracts, compares, and maxima — no FMA — so on builds without
// floating-point contraction their results are bitwise-identical to the
// scalar resolve_design path; with contraction enabled results may differ
// in the last ulp (and argmax ties may then resolve differently), which is
// why the reference kScalar path, not the SIMD path, carries the bitwise
// reproducibility guarantees (checkpoints, wire protocol).
//
// The SIMD path does not run the "contract.design" fault-injection point;
// chaos coverage targets the scalar batch path.
#pragma once

#include <cstddef>
#include <string>

#include "contract/arena.hpp"
#include "contract/designer.hpp"

namespace ccd::contract {

/// Which per-worker resolve kernel a batch/fleet design call runs.
enum class SweepKernel {
  /// Let the library pick: the vectorized path (currently always).
  kAuto = 0,
  /// Reference path: one resolve_design per worker. Bitwise-identical to
  /// design_contract; carries the reproducibility guarantees.
  kScalar,
  /// Vectorized tableau path: AVX2 when compiled in and supported by this
  /// CPU, otherwise the portable fallback loop.
  kSimd,
};

/// True when the AVX2 kernel is compiled in and this CPU supports it.
bool simd_available();

/// The instruction set the kSimd path resolves to: "avx2" or "portable".
std::string simd_kernel_name();

/// Collapse kAuto to a concrete kernel.
SweepKernel resolve_kernel(SweepKernel kernel);

/// Weight-independent per-class columns the resolve reads, arena-backed
/// and contiguous per k. Valid until the arena is reset.
struct ClassTableau {
  std::size_t m = 0;   ///< intervals
  double mu = 0.0;     ///< compensation weight (key field, per class)
  const double* feedback = nullptr;     ///< response feedback per k
  const double* pay = nullptr;          ///< response compensation per k
  const double* ub_feedback = nullptr;  ///< psi(l delta), l = 1..m
  const double* ub_pay = nullptr;       ///< lemma43 lower pay, l = 1..m
  const double* lb_feedback = nullptr;  ///< psi((k-1) delta), k = 1..m
  const double* lb_pay = nullptr;       ///< lemma42 upper pay, k = 1..m
  bool has_free_ride = false;           ///< omega > 0
  double free_ride_feedback = 0.0;      ///< psi(y_free) when omega > 0
  /// Shared best response to the zero contract — the §V exclusion outcome,
  /// identical for every worker of the class.
  BestResponse zero_response;
};

/// Build the tableau for one class from its design table. `spec` is any
/// spec of the class (weight is ignored). Columns are computed with the
/// same expressions as resolve_design / theorem41_{upper,lower}_bound so
/// the kernels reproduce the scalar values.
ClassTableau build_class_tableau(const SubproblemSpec& spec,
                                 const DesignTable& table,
                                 ScratchArena& arena);

/// Caller-allocated per-worker outputs of resolve_class (length >= count).
/// k_opt is the 1-based Eq. 43 argmax; exclusion (weight <= 0, or
/// requester_utility < 0) is applied by the caller.
struct ResolveOut {
  std::size_t* k_opt = nullptr;
  double* requester_utility = nullptr;
  double* upper_bound = nullptr;
};

/// Resolve `count` workers of one class (weights contiguous) against the
/// tableau. Dispatches to AVX2 when available unless `force_portable`.
void resolve_class(const ClassTableau& tableau, const double* weights,
                   std::size_t count, const ResolveOut& out,
                   bool force_portable = false);

namespace detail {

void resolve_class_portable(const ClassTableau& tableau, const double* weights,
                            std::size_t count, const ResolveOut& out);

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CCD_KSWEEP_HAVE_AVX2 1
bool avx2_supported();
void resolve_class_avx2(const ClassTableau& tableau, const double* weights,
                        std::size_t count, const ResolveOut& out);
#endif

}  // namespace detail

}  // namespace ccd::contract
