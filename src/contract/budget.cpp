#include "contract/budget.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

/// Best choice for one menu at money-price lambda (opt-out scores 0).
BudgetChoice best_at_lambda(const BudgetMenu& menu, double lambda) {
  BudgetChoice best;  // opt-out
  double best_score = 0.0;
  for (std::size_t i = 0; i < menu.pay.size(); ++i) {
    const double score = menu.utility[i] - lambda * menu.pay[i];
    // Strict improvement, with cheaper-pay tie-breaking to conserve budget.
    if (score > best_score + 1e-12 ||
        (score > best_score - 1e-12 && best.k != 0 &&
         menu.pay[i] < best.pay)) {
      best.k = i + 1;
      best.pay = menu.pay[i];
      best.utility = menu.utility[i];
      best_score = score;
    }
  }
  return best;
}

double spend_at_lambda(const std::vector<BudgetMenu>& menus, double lambda,
                       std::vector<BudgetChoice>* out) {
  double total = 0.0;
  if (out != nullptr) out->clear();
  for (const BudgetMenu& menu : menus) {
    const BudgetChoice choice = best_at_lambda(menu, lambda);
    total += choice.pay;
    if (out != nullptr) out->push_back(choice);
  }
  return total;
}

/// Exact-on-grid multiple-choice knapsack DP. Pays are rounded *up* to
/// budget/grid units so the result is always feasible; with a 4096-point
/// grid the rounding loss is negligible. Used when the table fits in a few
/// megabytes (small/medium fleets); the Lagrangian path covers the rest.
constexpr std::size_t kDpGrid = 4096;
constexpr std::size_t kDpMaxCells = 2'000'000;

bool dp_applicable(std::size_t menus) {
  return menus * (kDpGrid + 1) <= kDpMaxCells;
}

BudgetAllocation allocate_budget_dp(const std::vector<BudgetMenu>& menus,
                                    double budget) {
  const std::size_t grid = budget > 0.0 ? kDpGrid : 0;
  const auto cost_units = [&](double pay) -> std::size_t {
    if (pay <= 0.0) return 0;
    if (budget <= 0.0) return grid + 1;  // unaffordable
    return static_cast<std::size_t>(
        std::ceil(pay / budget * static_cast<double>(grid) - 1e-12));
  };

  constexpr double kNegInf = -1e300;
  std::vector<double> best(grid + 1, kNegInf);
  best[0] = 0.0;
  // choice[w][u]: option index + 1 taken by worker w when the running cost
  // is u after processing w (0 = opt out).
  std::vector<std::vector<std::uint16_t>> choice(
      menus.size(), std::vector<std::uint16_t>(grid + 1, 0));

  for (std::size_t w = 0; w < menus.size(); ++w) {
    const BudgetMenu& menu = menus[w];
    std::vector<double> next = best;  // opt out keeps the state
    for (std::size_t i = 0; i < menu.pay.size(); ++i) {
      const std::size_t cost = cost_units(menu.pay[i]);
      if (cost > grid) continue;
      for (std::size_t u = grid + 1; u-- > cost;) {
        const double candidate = best[u - cost] + menu.utility[i];
        if (best[u - cost] > kNegInf / 2 && candidate > next[u] + 1e-12) {
          next[u] = candidate;
          choice[w][u] = static_cast<std::uint16_t>(i + 1);
        }
      }
    }
    best = std::move(next);
  }

  std::size_t best_u = 0;
  for (std::size_t u = 0; u <= grid; ++u) {
    if (best[u] > best[best_u]) best_u = u;
  }

  BudgetAllocation result;
  result.choices.assign(menus.size(), BudgetChoice{});
  std::size_t u = best_u;
  for (std::size_t w = menus.size(); w-- > 0;) {
    const std::uint16_t taken = choice[w][u];
    if (taken != 0) {
      const std::size_t i = taken - 1;
      result.choices[w] = {static_cast<std::size_t>(taken),
                           menus[w].pay[i], menus[w].utility[i]};
      u -= cost_units(menus[w].pay[i]);
    }
  }
  for (const BudgetChoice& c : result.choices) {
    result.total_pay += c.pay;
    result.total_utility += c.utility;
  }
  result.budget_binding = result.total_pay > budget - 1e-6;
  return result;
}

}  // namespace

BudgetMenu menu_from_design(const DesignResult& design) {
  BudgetMenu menu;
  menu.pay = design.pay_by_k;
  menu.utility = design.utility_by_k;
  return menu;
}

BudgetAllocation allocate_budget(const std::vector<BudgetMenu>& menus,
                                 double budget) {
  CCD_CHECK_MSG(budget >= 0.0, "budget must be non-negative");
  for (const BudgetMenu& menu : menus) {
    CCD_CHECK_MSG(menu.pay.size() == menu.utility.size(),
                  "budget menu pay/utility size mismatch");
    for (const double p : menu.pay) {
      CCD_CHECK_MSG(p >= 0.0, "budget menu pay must be non-negative");
    }
  }

  BudgetAllocation result;

  // Unconstrained solution first: if it already fits, the budget is slack.
  double spend = spend_at_lambda(menus, 0.0, &result.choices);
  if (spend <= budget + 1e-9) {
    result.lambda = 0.0;
    result.budget_binding = false;
  } else {
    // Bisect the money price: spend(lambda) is non-increasing.
    double lo = 0.0;   // spend too high
    double hi = 1.0;   // find an upper bracket
    while (spend_at_lambda(menus, hi, nullptr) > budget && hi < 1e12) {
      hi *= 2.0;
    }
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (spend_at_lambda(menus, mid, nullptr) > budget) lo = mid;
      else hi = mid;
    }
    result.lambda = hi;
    result.budget_binding = true;
    spend = spend_at_lambda(menus, hi, &result.choices);

    // Greedy fill of the leftover: repeatedly apply the single-worker
    // upgrade with the best utility-per-pay density that still fits.
    while (true) {
      double best_density = 0.0;
      std::size_t best_worker = menus.size();
      std::size_t best_option = 0;
      for (std::size_t w = 0; w < menus.size(); ++w) {
        const BudgetMenu& menu = menus[w];
        const BudgetChoice& current = result.choices[w];
        for (std::size_t i = 0; i < menu.pay.size(); ++i) {
          const double extra_pay = menu.pay[i] - current.pay;
          const double extra_utility = menu.utility[i] - current.utility;
          if (extra_utility <= 1e-12) continue;
          if (spend + extra_pay > budget + 1e-9) continue;
          const double density = extra_pay <= 1e-12
                                     ? 1e18  // free improvement
                                     : extra_utility / extra_pay;
          if (density > best_density) {
            best_density = density;
            best_worker = w;
            best_option = i;
          }
        }
      }
      if (best_worker == menus.size()) break;
      const BudgetMenu& menu = menus[best_worker];
      BudgetChoice& choice = result.choices[best_worker];
      spend += menu.pay[best_option] - choice.pay;
      choice.k = best_option + 1;
      choice.pay = menu.pay[best_option];
      choice.utility = menu.utility[best_option];
    }
  }

  result.total_pay = 0.0;
  result.total_utility = 0.0;
  for (const BudgetChoice& choice : result.choices) {
    result.total_pay += choice.pay;
    result.total_utility += choice.utility;
  }

  // For fleets where the exact-on-grid DP table is affordable, run it too
  // and keep whichever allocation is better — this removes the Lagrangian
  // integrality gap on small instances.
  if (result.budget_binding && dp_applicable(menus.size())) {
    BudgetAllocation dp = allocate_budget_dp(menus, budget);
    if (dp.total_utility > result.total_utility + 1e-12) {
      dp.lambda = result.lambda;
      return dp;
    }
  }
  return result;
}

BudgetAllocation allocate_budget_exact(const std::vector<BudgetMenu>& menus,
                                       double budget, std::size_t max_items) {
  CCD_CHECK_MSG(budget >= 0.0, "budget must be non-negative");
  if (menus.size() > max_items) {
    throw ContractError("allocate_budget_exact: too many menus (" +
                        std::to_string(menus.size()) + " > " +
                        std::to_string(max_items) + ")");
  }
  double combos = 1.0;
  for (const BudgetMenu& menu : menus) {
    combos *= static_cast<double>(menu.pay.size() + 1);
  }
  if (combos > 2e7) {
    throw ContractError("allocate_budget_exact: search space too large");
  }

  BudgetAllocation best;
  best.choices.assign(menus.size(), BudgetChoice{});
  best.total_utility = 0.0;
  best.total_pay = 0.0;

  std::vector<BudgetChoice> current(menus.size());
  const std::function<void(std::size_t, double, double)> recurse =
      [&](std::size_t index, double pay, double utility) {
        if (pay > budget + 1e-9) return;
        if (index == menus.size()) {
          if (utility > best.total_utility + 1e-12) {
            best.total_utility = utility;
            best.total_pay = pay;
            best.choices = current;
          }
          return;
        }
        // Opt out.
        current[index] = BudgetChoice{};
        recurse(index + 1, pay, utility);
        const BudgetMenu& menu = menus[index];
        for (std::size_t i = 0; i < menu.pay.size(); ++i) {
          current[index] = {i + 1, menu.pay[i], menu.utility[i]};
          recurse(index + 1, pay + menu.pay[i], utility + menu.utility[i]);
        }
      };
  recurse(0, 0.0, 0.0);
  best.budget_binding = best.total_pay > budget - 1e-6;
  return best;
}

}  // namespace ccd::contract
