// AVX2 kernel for the per-class worker resolve. Compiled into every x86-64
// build via per-function target attributes (the translation unit itself is
// baseline-ISA; only the tagged function uses AVX2 encodings), selected at
// run time through __builtin_cpu_supports. Non-x86 builds compile this file
// to nothing and use the portable loop.
//
// Arithmetic discipline: multiplies, subtracts, ordered compares, and
// compare+blend maxima only — no FMA — so each lane performs the exact
// rounding sequence of the scalar expression `w * f - mu * p` and of
// std::max (blend on strictly-greater keeps the earlier operand on ties,
// including mixed-sign zeros, matching std::max exactly).
#include "contract/ksweep.hpp"

#ifdef CCD_KSWEEP_HAVE_AVX2

#include <immintrin.h>

namespace ccd::contract::detail {

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

__attribute__((target("avx2"))) void resolve_class_avx2(
    const ClassTableau& tableau, const double* weights, std::size_t count,
    const ResolveOut& out) {
  const std::size_t m = tableau.m;
  const __m256d mu = _mm256_set1_pd(tableau.mu);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d w = _mm256_loadu_pd(weights + i);

    // Eq. 43 argmax; lane = worker, k runs serially. Strictly-greater
    // blend reproduces the scalar first-max tie break.
    __m256d best = _mm256_sub_pd(_mm256_mul_pd(w, _mm256_set1_pd(tableau.feedback[0])),
                                 _mm256_mul_pd(mu, _mm256_set1_pd(tableau.pay[0])));
    __m256d best_k = _mm256_set1_pd(1.0);
    for (std::size_t j = 1; j < m; ++j) {
      const __m256d utility =
          _mm256_sub_pd(_mm256_mul_pd(w, _mm256_set1_pd(tableau.feedback[j])),
                        _mm256_mul_pd(mu, _mm256_set1_pd(tableau.pay[j])));
      const __m256d greater = _mm256_cmp_pd(utility, best, _CMP_GT_OQ);
      best = _mm256_blendv_pd(best, utility, greater);
      best_k = _mm256_blendv_pd(
          best_k, _mm256_set1_pd(static_cast<double>(j + 1)), greater);
    }

    // Theorem 4.1 upper bound. blend-on-greater == std::max(ub, value).
    __m256d ub = _mm256_set1_pd(-1e300);
    for (std::size_t j = 0; j < m; ++j) {
      const __m256d value =
          _mm256_sub_pd(_mm256_mul_pd(w, _mm256_set1_pd(tableau.ub_feedback[j])),
                        _mm256_mul_pd(mu, _mm256_set1_pd(tableau.ub_pay[j])));
      ub = _mm256_blendv_pd(ub, value, _mm256_cmp_pd(value, ub, _CMP_GT_OQ));
    }
    if (tableau.has_free_ride) {
      const __m256d value =
          _mm256_mul_pd(w, _mm256_set1_pd(tableau.free_ride_feedback));
      ub = _mm256_blendv_pd(ub, value, _mm256_cmp_pd(value, ub, _CMP_GT_OQ));
    }

    _mm256_storeu_pd(out.requester_utility + i, best);
    _mm256_storeu_pd(out.upper_bound + i, ub);
    alignas(32) double k_lanes[4];
    _mm256_store_pd(k_lanes, best_k);
    for (int lane = 0; lane < 4; ++lane) {
      out.k_opt[i + lane] = static_cast<std::size_t>(k_lanes[lane]);
    }
  }

  if (i < count) {
    const ResolveOut tail{out.k_opt + i, out.requester_utility + i,
                          out.upper_bound + i};
    resolve_class_portable(tableau, weights + i, count - i, tail);
  }
}

}  // namespace ccd::contract::detail

#endif  // CCD_KSWEEP_HAVE_AVX2
