// Baseline pricing strategies the paper compares against, plus a fine-grid
// oracle used by the ablation benches.
//
//  * Fixed-threshold payment: the classic crowdsourcing contract — a flat
//    payment c for completing the task to a minimum standard (feedback of
//    at least psi(y_min)); the related-work strategy the paper's intro
//    criticizes. Workers best-respond in closed form.
//  * Exclusion: remove all suspected malicious workers (Fig. 8(c)'s
//    baseline). Exposed here as a per-worker decision; the pipeline applies
//    it fleet-wide.
//  * Oracle: the best utility any incentive-compatible payment rule could
//    extract from this worker, found by fine-grid search over induced
//    effort with the minimum payment that makes that effort individually
//    rational. Upper reference for near-optimality claims.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"

namespace ccd::contract {

struct FixedContractOutcome {
  bool accepted = false;       ///< worker chose to meet the threshold
  double effort = 0.0;
  double feedback = 0.0;
  double compensation = 0.0;   ///< payment if accepted, else 0
  double worker_utility = 0.0;
  double requester_utility = 0.0;
};

/// Fixed payment `payment` for reaching effort >= y_min (feedback >=
/// psi(y_min)). The worker compares the best utility meeting the threshold
/// against the best utility below it.
FixedContractOutcome fixed_threshold_baseline(const SubproblemSpec& spec,
                                              double payment, double y_min);

struct OracleOutcome {
  double effort = 0.0;
  double compensation = 0.0;  ///< minimum IR payment inducing that effort
  double requester_utility = 0.0;
};

/// Fine-grid oracle: max over induced effort y of
///   w psi(y) - mu * c_min(y),
/// where c_min(y) = max(0, beta y - omega (psi(y) - psi(0))) is the smallest
/// payment making effort y individually rational against the worker's
/// outside option (zero effort).
OracleOutcome oracle_optimal(const SubproblemSpec& spec,
                             std::size_t grid_points = 4001);

/// Memoized front end for oracle_optimal. Unlike the k-sweep, the oracle
/// *does* depend on spec.weight, so the key is the DesignCacheKey
/// canonicalization (every k-sweep input, -0.0 normalized to +0.0, bitwise
/// compare) extended with the canonicalized weight and the grid size.
/// A regret bench querying the oracle per worker per round pays for one
/// grid sweep per distinct (spec, weight, grid) instead of one per call.
class OracleCache {
 public:
  /// Equivalent (bitwise) to oracle_optimal(spec, grid_points).
  OracleOutcome optimal(const SubproblemSpec& spec,
                        std::size_t grid_points = 4001);

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;

 private:
  struct Key {
    DesignCacheKey spec;
    double weight = 0.0;
    std::uint64_t grid_points = 0;
    bool operator==(const Key& other) const;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, OracleOutcome, KeyHash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ccd::contract
