#include "contract/candidate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ccd::contract {

void candidate_recurrence(const effort::QuadraticEffort& psi, double delta,
                          std::size_t m, std::size_t k_max,
                          const WorkerIncentives& inc, bool cap_epsilon,
                          CandidateRecurrence& out) {
  CCD_CHECK_MSG(delta > 0.0, "candidate delta must be positive");
  CCD_CHECK_MSG(m >= 1, "candidate needs at least one interval");
  CCD_CHECK_MSG(k_max >= 1 && k_max <= m,
                "candidate target interval k out of range");
  CCD_CHECK_MSG(inc.beta > 0.0, "worker beta must be positive");
  CCD_CHECK_MSG(inc.omega >= 0.0, "worker omega must be non-negative");

  // s_l = psi'(l * delta); the whole grid must sit where psi is strictly
  // increasing, else feedback knots would not be increasing.
  std::vector<double> s(m + 1);
  for (std::size_t l = 0; l <= m; ++l) {
    s[l] = psi.derivative(delta * static_cast<double>(l));
    if (!(s[l] > 0.0)) {
      throw ContractError(
          "candidate grid reaches past the peak of psi; shrink delta*m");
    }
  }

  const double beta = inc.beta;
  const double omega = inc.omega;
  const double r2 = psi.r2();

  out.raw_slopes.clear();
  out.applied_slopes.clear();
  out.epsilons.clear();
  out.degenerate_window.clear();
  out.raw_slopes.reserve(k_max);
  out.applied_slopes.reserve(k_max);
  out.epsilons.reserve(k_max);
  out.degenerate_window.reserve(k_max);
  out.pay_prefix.clear();
  out.pay_prefix.reserve(k_max + 1);
  out.pay_prefix.push_back(0.0);

  // Seed: alpha_0 + omega = beta / psi'(0), the boundary at which the
  // stationary effort of Eq. 31 sits exactly at y = 0.
  double alpha_prev = beta / s[0] - omega;
  for (std::size_t l = 1; l <= k_max; ++l) {
    // Eq. 40's epsilon scales like delta^2 / psi'(m delta): on coarse grids
    // it can fill the whole Case-III window and push the slope to the
    // expensive Case-II edge, breaking Lemma 4.2's pay cap (the paper's
    // construction is implicitly fine-grid). Any positive epsilon keeps the
    // strict preference of Eq. 36, so we cap it at a small fraction of the
    // remaining window; for fine grids the Eq. 40 value is smaller and is
    // used unchanged.
    const double eps_eq40 =
        4.0 * beta * r2 * r2 * delta * delta / (s[l - 1] * s[l - 1] * s[l]);
    const double base =
        beta * beta / ((alpha_prev + omega) * s[l - 1] * s[l - 1]) - omega;
    const double window_right = beta / s[l] - omega;
    double eps = eps_eq40;
    bool degenerate = false;
    if (cap_epsilon) {
      eps = std::min(eps_eq40, 0.05 * (window_right - base));
      // Eq. 36 needs alpha strictly above base. The capped window can
      // collapse — non-positive after rounding when s_{l-1} and s_l agree
      // to the last bit, or so narrow that base + eps rounds back to base —
      // and the former min() then produced a non-positive (or numerically
      // inert) epsilon, silently dropping the strict preference. Substitute
      // a small relative floor: overshooting a collapsed window is
      // unavoidable, but the ascent toward interval k survives.
      if (!(base + eps > base)) {
        degenerate = true;
        eps = 1e-9 * std::max(1.0, std::abs(base));
      }
    }
    const double alpha_raw = base + eps;
    const double alpha_applied = std::max(alpha_raw, 0.0);
    const double d_prev = psi(delta * static_cast<double>(l - 1));
    const double d_here = psi(delta * static_cast<double>(l));
    out.pay_prefix.push_back(out.pay_prefix.back() +
                             alpha_applied * (d_here - d_prev));
    out.raw_slopes.push_back(alpha_raw);
    out.applied_slopes.push_back(alpha_applied);
    out.epsilons.push_back(eps);
    out.degenerate_window.push_back(degenerate ? 1 : 0);
    alpha_prev = alpha_raw;  // the recurrence uses the unclamped value
  }
}

Contract build_candidate(const effort::QuadraticEffort& psi, double delta,
                         std::size_t m, std::size_t k,
                         const WorkerIncentives& inc,
                         CandidateBuildInfo* info, bool cap_epsilon) {
  CandidateRecurrence rec;
  candidate_recurrence(psi, delta, m, k, inc, cap_epsilon, rec);

  if (info != nullptr) {
    info->raw_slopes = rec.raw_slopes;
    info->applied_slopes = rec.applied_slopes;
    info->epsilons = rec.epsilons;
    info->degenerate_window = rec.degenerate_window;
  }

  std::vector<double> payments(m + 1, 0.0);
  std::copy(rec.pay_prefix.begin(), rec.pay_prefix.end(), payments.begin());
  for (std::size_t l = k + 1; l <= m; ++l) {
    payments[l] = payments[k];  // flat past the target: extra effort is free
  }
  return Contract::on_effort_grid(psi, delta, std::move(payments));
}

}  // namespace ccd::contract
