#include "contract/candidate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ccd::contract {

Contract build_candidate(const effort::QuadraticEffort& psi, double delta,
                         std::size_t m, std::size_t k,
                         const WorkerIncentives& inc,
                         CandidateBuildInfo* info, bool cap_epsilon) {
  CCD_CHECK_MSG(delta > 0.0, "candidate delta must be positive");
  CCD_CHECK_MSG(m >= 1, "candidate needs at least one interval");
  CCD_CHECK_MSG(k >= 1 && k <= m, "candidate target interval k out of range");
  CCD_CHECK_MSG(inc.beta > 0.0, "worker beta must be positive");
  CCD_CHECK_MSG(inc.omega >= 0.0, "worker omega must be non-negative");

  // s_l = psi'(l * delta); the whole grid must sit where psi is strictly
  // increasing, else feedback knots would not be increasing.
  std::vector<double> s(m + 1);
  for (std::size_t l = 0; l <= m; ++l) {
    s[l] = psi.derivative(delta * static_cast<double>(l));
    if (!(s[l] > 0.0)) {
      throw ContractError(
          "candidate grid reaches past the peak of psi; shrink delta*m");
    }
  }

  const double beta = inc.beta;
  const double omega = inc.omega;
  const double r2 = psi.r2();

  if (info != nullptr) {
    info->raw_slopes.clear();
    info->applied_slopes.clear();
    info->epsilons.clear();
  }

  std::vector<double> payments(m + 1, 0.0);
  // Seed: alpha_0 + omega = beta / psi'(0), the boundary at which the
  // stationary effort of Eq. 31 sits exactly at y = 0.
  double alpha_prev = beta / s[0] - omega;
  for (std::size_t l = 1; l <= k; ++l) {
    // Eq. 40's epsilon scales like delta^2 / psi'(m delta): on coarse grids
    // it can fill the whole Case-III window and push the slope to the
    // expensive Case-II edge, breaking Lemma 4.2's pay cap (the paper's
    // construction is implicitly fine-grid). Any positive epsilon keeps the
    // strict preference of Eq. 36, so we cap it at a small fraction of the
    // remaining window; for fine grids the Eq. 40 value is smaller and is
    // used unchanged.
    const double eps_eq40 =
        4.0 * beta * r2 * r2 * delta * delta / (s[l - 1] * s[l - 1] * s[l]);
    const double base =
        beta * beta / ((alpha_prev + omega) * s[l - 1] * s[l - 1]) - omega;
    const double window_right = beta / s[l] - omega;
    const double eps = cap_epsilon
                           ? std::min(eps_eq40, 0.05 * (window_right - base))
                           : eps_eq40;
    const double alpha_raw = base + eps;
    const double alpha_applied = std::max(alpha_raw, 0.0);
    const double d_prev = psi(delta * static_cast<double>(l - 1));
    const double d_here = psi(delta * static_cast<double>(l));
    payments[l] = payments[l - 1] + alpha_applied * (d_here - d_prev);
    if (info != nullptr) {
      info->raw_slopes.push_back(alpha_raw);
      info->applied_slopes.push_back(alpha_applied);
      info->epsilons.push_back(eps);
    }
    alpha_prev = alpha_raw;  // the recurrence uses the unclamped value
  }
  for (std::size_t l = k + 1; l <= m; ++l) {
    payments[l] = payments[k];  // flat past the target: extra effort is free
  }
  return Contract::on_effort_grid(psi, delta, std::move(payments));
}

}  // namespace ccd::contract
