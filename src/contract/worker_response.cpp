#include "contract/worker_response.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace ccd::contract {
namespace {

void check_incentives(const WorkerIncentives& inc) {
  CCD_CHECK_MSG(inc.beta > 0.0, "worker beta must be positive");
  CCD_CHECK_MSG(inc.omega >= 0.0, "worker omega must be non-negative");
}

}  // namespace

double worker_utility(const Contract& contract,
                      const effort::QuadraticEffort& psi,
                      const WorkerIncentives& inc, double y) {
  CCD_CHECK_MSG(y >= 0.0, "worker effort must be non-negative");
  const double feedback = psi(y);
  return contract.pay(feedback) - inc.beta * y + inc.omega * feedback;
}

SlopeCase classify_piece(const effort::QuadraticEffort& psi,
                         const WorkerIncentives& inc, double alpha,
                         std::size_t l, double delta) {
  check_incentives(inc);
  CCD_CHECK_MSG(l >= 1, "interval index is 1-based");
  CCD_CHECK_MSG(delta > 0.0, "delta must be positive");
  const double lo = static_cast<double>(l - 1) * delta;
  const double hi = static_cast<double>(l) * delta;
  const double coeff = alpha + inc.omega;
  // dF/dy = (alpha + omega) psi'(y) - beta. With coeff > 0 it is decreasing
  // in y (psi' decreases); with coeff <= 0 it is everywhere < 0.
  const double d_lo = coeff * psi.derivative(lo) - inc.beta;
  const double d_hi = coeff * psi.derivative(hi) - inc.beta;
  if (d_lo <= 0.0) return SlopeCase::kNonIncreasing;
  if (d_hi >= 0.0) return SlopeCase::kNonDecreasing;
  return SlopeCase::kInterior;
}

double stationary_effort(const effort::QuadraticEffort& psi,
                         const WorkerIncentives& inc, double alpha) {
  check_incentives(inc);
  const double coeff = alpha + inc.omega;
  CCD_CHECK_MSG(coeff > 0.0,
                "stationary effort requires alpha + omega > 0");
  // psi'(y) = beta / (alpha + omega)  — Eq. 31 for the quadratic psi.
  return psi.derivative_inverse(inc.beta / coeff);
}

BestResponse best_response(const Contract& contract,
                           const effort::QuadraticEffort& psi,
                           const WorkerIncentives& inc, double effort_limit,
                           std::vector<double>* scratch) {
  check_incentives(inc);
  double limit = effort_limit;
  if (limit < 0.0) limit = psi.y_peak();
  CCD_CHECK_MSG(limit >= 0.0, "effort limit must be non-negative");

  // Candidate efforts: interval endpoints, interior stationary points, the
  // participation point 0, and the saturated region past the last knot.
  // A caller-provided scratch buffer keeps capacity across the k-sweep's
  // repeated calls; the values (and so the result) are identical.
  std::vector<double> local;
  std::vector<double>& candidates = scratch != nullptr ? *scratch : local;
  candidates.assign(1, 0.0);

  const std::size_t m = contract.intervals();
  double grid_end = 0.0;
  if (m > 0) {
    const double delta = contract.delta();
    grid_end = std::min(limit, delta * static_cast<double>(m));
    for (std::size_t l = 1; l <= m; ++l) {
      const double lo = delta * static_cast<double>(l - 1);
      const double hi = delta * static_cast<double>(l);
      if (lo > limit) break;
      candidates.push_back(std::min(lo, limit));
      candidates.push_back(std::min(hi, limit));
      const double alpha = contract.slope(l);
      if (classify_piece(psi, inc, alpha, l, delta) == SlopeCase::kInterior) {
        const double y_star = stationary_effort(psi, inc, alpha);
        if (y_star > lo && y_star < hi && y_star <= limit) {
          candidates.push_back(y_star);
        }
      }
    }
  }

  // Past the grid (or with a zero contract) the payment is constant, so the
  // objective reduces to omega * psi(y) - beta * y; its stationary point is
  // psi'(y) = beta / omega when omega > 0.
  if (limit > grid_end) {
    candidates.push_back(limit);
    if (inc.omega > 0.0) {
      const double y_star = psi.derivative_inverse(inc.beta / inc.omega);
      if (y_star > grid_end && y_star < limit) candidates.push_back(y_star);
    }
  }

  std::sort(candidates.begin(), candidates.end());
  BestResponse best;
  best.effort = 0.0;
  best.utility = worker_utility(contract, psi, inc, 0.0);
  for (const double y : candidates) {
    const double u = worker_utility(contract, psi, inc, y);
    // Strict improvement keeps the smallest maximizing effort (workers
    // don't spend effort for nothing on ties).
    if (u > best.utility + 1e-12) {
      best.effort = y;
      best.utility = u;
    }
  }

  best.feedback = psi(best.effort);
  best.compensation = contract.pay(best.feedback);
  if (best.effort <= 0.0 || m == 0) {
    best.interval = 0;
  } else {
    const double delta = contract.delta();
    const double grid_span = delta * static_cast<double>(m);
    if (best.effort > grid_span + 1e-12) {
      best.interval = m + 1;
    } else {
      // floor with tolerance so that effort exactly at a knot counts in the
      // interval it closes.
      std::size_t l = static_cast<std::size_t>(
          std::ceil(best.effort / delta - 1e-9));
      l = std::clamp<std::size_t>(l, 1, m);
      best.interval = l;
    }
  }
  return best;
}

}  // namespace ccd::contract
