// Budget-feasible contract allocation.
//
// The paper's related work (§VI — Singer's budget-feasibility line) designs
// incentives under a hard payment budget; our extension brings that setting
// to the dynamic-contract model. Given the per-candidate (pay, utility)
// menus the designer produces for every subproblem, choose one candidate
// (or exclusion) per worker to maximize total requester utility subject to
// total compensation <= budget.
//
// The selection problem is a multiple-choice knapsack. We solve it by
// Lagrangian relaxation: for a price-of-money lambda each worker
// independently picks argmax_k (utility_k - lambda * pay_k) (with the
// opt-out option at 0), and lambda is bisected until the spend meets the
// budget. Because per-worker menus are small and utilities are concave-ish
// in pay, the duality gap is at most one worker's pay — negligible at fleet
// scale, and an exhaustive check in the tests confirms it on small inputs.
#pragma once

#include <cstddef>
#include <vector>

#include "contract/designer.hpp"

namespace ccd::contract {

/// One worker's menu: the designer's per-candidate pay/utility columns.
struct BudgetMenu {
  std::vector<double> pay;      ///< pay_by_k
  std::vector<double> utility;  ///< utility_by_k
};

/// Menu extracted from a DesignResult (empty menu for excluded workers).
BudgetMenu menu_from_design(const DesignResult& design);

struct BudgetChoice {
  /// Selected candidate index + 1 (i.e. the k); 0 = opt out of this worker.
  std::size_t k = 0;
  double pay = 0.0;
  double utility = 0.0;
};

struct BudgetAllocation {
  std::vector<BudgetChoice> choices;  ///< one per menu, same order
  double total_pay = 0.0;
  double total_utility = 0.0;
  /// Shadow price of budget at the solution (0 when the budget is slack).
  double lambda = 0.0;
  bool budget_binding = false;
};

/// Allocate under `budget` (>= 0). Menus may be empty (always opted out).
BudgetAllocation allocate_budget(const std::vector<BudgetMenu>& menus,
                                 double budget);

/// Exact solution by exhaustive enumeration — exponential, for testing and
/// tiny fleets only (throws ccd::ContractError beyond `max_items` menus).
BudgetAllocation allocate_budget_exact(const std::vector<BudgetMenu>& menus,
                                       double budget,
                                       std::size_t max_items = 12);

}  // namespace ccd::contract
