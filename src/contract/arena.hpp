// Monotonic chunked arena for per-solve numeric scratch.
//
// The fleet design path needs many short-lived double arrays per spec
// class (per-k tableau columns, per-worker resolve outputs). Allocating
// them as std::vectors churns the heap once per class per round; the arena
// hands out spans from reusable blocks instead. reset() recycles all
// memory without releasing it, so steady-state redesign rounds allocate
// nothing.
//
// Blocks never move once allocated: a pointer returned by doubles() stays
// valid until reset(), even across later allocations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

namespace ccd::contract {

class ScratchArena {
 public:
  /// Uninitialized span of n doubles, valid until reset().
  double* doubles(std::size_t n) {
    if (n == 0) return nullptr;
    while (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      if (block.used + n <= block.size) {
        double* out = block.data.get() + block.used;
        block.used += n;
        return out;
      }
      ++active_;
    }
    const std::size_t size = std::max(n, kMinBlockDoubles);
    blocks_.push_back(Block{std::make_unique<double[]>(size), size, n});
    active_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  /// Zero-initialized span of n doubles.
  double* zeroed_doubles(std::size_t n) {
    double* out = doubles(n);
    std::fill(out, out + n, 0.0);
    return out;
  }

  /// Invalidates every outstanding span; retains capacity for reuse.
  void reset() {
    for (Block& block : blocks_) block.used = 0;
    active_ = 0;
  }

  /// Total doubles reserved across blocks (capacity, not live usage).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  static constexpr std::size_t kMinBlockDoubles = 4096;

  struct Block {
    std::unique_ptr<double[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

}  // namespace ccd::contract
