#include "contract/ksweep.hpp"

#include <algorithm>

#include "contract/bounds.hpp"
#include "contract/worker_response.hpp"
#include "util/error.hpp"

namespace ccd::contract {

bool simd_available() {
#ifdef CCD_KSWEEP_HAVE_AVX2
  static const bool supported = detail::avx2_supported();
  return supported;
#else
  return false;
#endif
}

std::string simd_kernel_name() {
  return simd_available() ? "avx2" : "portable";
}

SweepKernel resolve_kernel(SweepKernel kernel) {
  // kAuto currently always picks the vectorized path: even without AVX2 it
  // is the allocation-free tableau loop, strictly cheaper than per-worker
  // resolve_design. Callers that need the bitwise reference semantics ask
  // for kScalar explicitly.
  return kernel == SweepKernel::kAuto ? SweepKernel::kSimd : kernel;
}

ClassTableau build_class_tableau(const SubproblemSpec& spec,
                                 const DesignTable& table,
                                 ScratchArena& arena) {
  const std::size_t m = spec.intervals;
  CCD_CHECK_MSG(table.candidates.size() == m,
                "design table does not match spec.intervals");
  const double delta = spec.delta();
  const double beta = spec.incentives.beta;
  const double omega = spec.incentives.omega;

  ClassTableau t;
  t.m = m;
  t.mu = spec.mu;
  double* feedback = arena.doubles(m);
  double* pay = arena.doubles(m);
  double* ub_feedback = arena.doubles(m);
  double* ub_pay = arena.doubles(m);
  double* lb_feedback = arena.doubles(m);
  double* lb_pay = arena.doubles(m);
  for (std::size_t k = 1; k <= m; ++k) {
    const BestResponse& response = table.candidates[k - 1].response;
    feedback[k - 1] = response.feedback;
    pay[k - 1] = response.compensation;
    // Same expressions as theorem41_upper_bound (l-loop operand) and
    // theorem41_lower_bound, so w * column - mu * column reproduces the
    // scalar bounds exactly.
    ub_feedback[k - 1] = spec.psi(delta * static_cast<double>(k));
    ub_pay[k - 1] = lemma43_compensation_lower(spec.psi, beta, delta, k, omega);
    lb_feedback[k - 1] = spec.psi(delta * (static_cast<double>(k) - 1.0));
    lb_pay[k - 1] = lemma42_compensation_upper(spec.psi, beta, delta, k);
  }
  t.feedback = feedback;
  t.pay = pay;
  t.ub_feedback = ub_feedback;
  t.ub_pay = ub_pay;
  t.lb_feedback = lb_feedback;
  t.lb_pay = lb_pay;
  if (omega > 0.0) {
    t.has_free_ride = true;
    const double y_free =
        std::clamp(spec.psi.derivative_inverse(beta / omega), 0.0,
                   spec.psi.y_peak());
    t.free_ride_feedback = spec.psi(y_free);
  }
  t.zero_response = best_response(Contract(), spec.psi, spec.incentives);
  return t;
}

namespace detail {

void resolve_class_portable(const ClassTableau& tableau, const double* weights,
                            std::size_t count, const ResolveOut& out) {
  const std::size_t m = tableau.m;
  const double mu = tableau.mu;
  for (std::size_t i = 0; i < count; ++i) {
    const double w = weights[i];
    // Eq. 43 argmax with the scalar path's first-max tie break (strictly
    // greater replaces).
    double best = w * tableau.feedback[0] - mu * tableau.pay[0];
    std::size_t best_k = 1;
    for (std::size_t j = 1; j < m; ++j) {
      const double utility = w * tableau.feedback[j] - mu * tableau.pay[j];
      if (utility > best) {
        best = utility;
        best_k = j + 1;
      }
    }
    // Theorem 4.1 upper bound, mirroring theorem41_upper_bound's reduction
    // (std::max keeps the earlier operand on ties).
    double ub = -1e300;
    for (std::size_t j = 0; j < m; ++j) {
      const double value = w * tableau.ub_feedback[j] - mu * tableau.ub_pay[j];
      ub = std::max(ub, value);
    }
    if (tableau.has_free_ride) {
      ub = std::max(ub, w * tableau.free_ride_feedback);
    }
    out.k_opt[i] = best_k;
    out.requester_utility[i] = best;
    out.upper_bound[i] = ub;
  }
}

}  // namespace detail

void resolve_class(const ClassTableau& tableau, const double* weights,
                   std::size_t count, const ResolveOut& out,
                   bool force_portable) {
  if (count == 0) return;
#ifdef CCD_KSWEEP_HAVE_AVX2
  if (!force_portable && simd_available()) {
    detail::resolve_class_avx2(tableau, weights, count, out);
    return;
  }
#else
  (void)force_portable;
#endif
  detail::resolve_class_portable(tableau, weights, count, out);
}

}  // namespace ccd::contract
