#include "contract/designer.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::contract {

double SubproblemSpec::resolved_domain() const {
  return effort_domain > 0.0 ? effort_domain : psi.usable_domain();
}

double SubproblemSpec::delta() const {
  return resolved_domain() / static_cast<double>(intervals);
}

void SubproblemSpec::validate() const {
  CCD_CHECK_MSG(mu > 0.0, "mu must be positive");
  CCD_CHECK_MSG(intervals >= 1, "need at least one effort interval");
  CCD_CHECK_MSG(incentives.beta > 0.0, "beta must be positive");
  CCD_CHECK_MSG(incentives.omega >= 0.0, "omega must be non-negative");
  const double domain = resolved_domain();
  CCD_CHECK_MSG(domain > 0.0, "effort domain must be positive");
  CCD_CHECK_MSG(psi.increasing_on(domain),
                "psi must be strictly increasing on the effort domain");
}

double requester_utility(const SubproblemSpec& spec,
                         const BestResponse& response) {
  return spec.weight * response.feedback - spec.mu * response.compensation;
}

namespace {

/// The zero-contract outcome shared by both exclusion paths (weight <= 0
/// and the max_k utility < 0 fallback).
DesignResult excluded_result(const SubproblemSpec& spec) {
  DesignResult result;
  result.excluded = true;
  result.contract = Contract();
  result.response = best_response(result.contract, spec.psi, spec.incentives);
  result.requester_utility = 0.0;
  return result;
}

/// Stable per-spec key for fault injection: a deterministic mix over the
/// bit patterns of *every* field that distinguishes one subproblem from
/// another. The former key folded in only weight, mu, and intervals, so
/// specs differing only in psi, beta, or omega (e.g. the per-class fits of
/// one fleet) collided on the same injection site key and could not be
/// targeted independently.
std::uint64_t fault_key(const SubproblemSpec& spec) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix_double(spec.psi.r2());
  mix_double(spec.psi.r1());
  mix_double(spec.psi.r0());
  mix_double(spec.incentives.beta);
  mix_double(spec.incentives.omega);
  mix_double(spec.weight);
  mix_double(spec.mu);
  mix(static_cast<std::uint64_t>(spec.intervals));
  mix_double(spec.effort_domain);
  return h;
}

}  // namespace

DesignTable build_design_table(const SubproblemSpec& spec) {
  spec.validate();
  const double delta = spec.delta();
  const std::size_t m = spec.intervals;

  // The Eq. 39/40 recurrence never reads k: candidate k's slopes are the
  // prefix alpha_1..alpha_k of one shared sequence, so a single recurrence
  // pass serves the whole sweep. Each candidate materializes as the shared
  // payment prefix plus a flat tail — bitwise-identical to the former
  // per-candidate build_candidate loop, without its O(m^2) recomputation
  // (and without re-evaluating the psi knots m times).
  CandidateRecurrence rec;
  candidate_recurrence(spec.psi, delta, m, m, spec.incentives,
                       /*cap_epsilon=*/true, rec);
  std::vector<double> knots(m + 1);
  for (std::size_t l = 0; l <= m; ++l) {
    knots[l] = spec.psi(delta * static_cast<double>(l));
  }

  DesignTable table;
  table.candidates.reserve(m);
  std::vector<double> response_scratch;
  for (std::size_t k = 1; k <= m; ++k) {
    std::vector<double> payments(m + 1);
    std::copy(rec.pay_prefix.begin(), rec.pay_prefix.begin() + k + 1,
              payments.begin());
    std::fill(payments.begin() + k + 1, payments.end(), rec.pay_prefix[k]);
    CandidateOutcome outcome;
    outcome.contract = Contract(delta, knots, std::move(payments));
    outcome.response = best_response(outcome.contract, spec.psi,
                                     spec.incentives, -1.0, &response_scratch);
    table.candidates.push_back(std::move(outcome));
  }
  return table;
}

DesignResult resolve_design(const SubproblemSpec& spec,
                            const DesignTable& table) {
  spec.validate();

  // Non-positive feedback weight: no payment is worth it; exclude (§V's
  // "automatically eliminated" workers get the zero contract). The
  // requester drops their feedback entirely: zero utility, zero pay.
  if (spec.weight <= 0.0) return excluded_result(spec);

  CCD_FAULT_POINT("contract.design", fault_key(spec), ContractError);

  const std::size_t m = spec.intervals;
  CCD_CHECK_MSG(table.candidates.size() == m,
                "design table does not match spec.intervals");

  DesignResult result;
  result.utility_by_k.assign(m, 0.0);
  result.pay_by_k.assign(m, 0.0);
  bool have_best = false;
  for (std::size_t k = 1; k <= m; ++k) {
    const CandidateOutcome& candidate = table.candidates[k - 1];
    const double utility = requester_utility(spec, candidate.response);
    result.utility_by_k[k - 1] = utility;
    result.pay_by_k[k - 1] = candidate.response.compensation;
    if (!have_best || utility > result.requester_utility) {
      have_best = true;
      result.requester_utility = utility;
      result.k_opt = k;
      result.contract = candidate.contract;
      result.response = candidate.response;
    }
  }

  // §V elimination fallback: when even the best candidate loses the
  // requester money, the zero contract (utility 0) strictly dominates.
  // Keep the per-k diagnostics so callers can see what was rejected.
  if (result.requester_utility < 0.0) {
    DesignResult fallback = excluded_result(spec);
    fallback.utility_by_k = std::move(result.utility_by_k);
    fallback.pay_by_k = std::move(result.pay_by_k);
    return fallback;
  }

  const double delta = spec.delta();
  result.upper_bound =
      theorem41_upper_bound(spec.psi, spec.weight, spec.mu,
                            spec.incentives.beta, delta, m,
                            spec.incentives.omega);
  result.lower_bound = theorem41_lower_bound(
      spec.psi, spec.weight, spec.mu, spec.incentives.beta, delta,
      result.k_opt);
  return result;
}

DesignResult design_contract(const SubproblemSpec& spec) {
  spec.validate();
  if (spec.weight <= 0.0) return excluded_result(spec);
  return resolve_design(spec, build_design_table(spec));
}

}  // namespace ccd::contract
