#include "contract/designer.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::contract {

double SubproblemSpec::resolved_domain() const {
  return effort_domain > 0.0 ? effort_domain : psi.usable_domain();
}

double SubproblemSpec::delta() const {
  return resolved_domain() / static_cast<double>(intervals);
}

void SubproblemSpec::validate() const {
  CCD_CHECK_MSG(mu > 0.0, "mu must be positive");
  CCD_CHECK_MSG(intervals >= 1, "need at least one effort interval");
  CCD_CHECK_MSG(incentives.beta > 0.0, "beta must be positive");
  CCD_CHECK_MSG(incentives.omega >= 0.0, "omega must be non-negative");
  const double domain = resolved_domain();
  CCD_CHECK_MSG(domain > 0.0, "effort domain must be positive");
  CCD_CHECK_MSG(psi.increasing_on(domain),
                "psi must be strictly increasing on the effort domain");
}

double requester_utility(const SubproblemSpec& spec,
                         const BestResponse& response) {
  return spec.weight * response.feedback - spec.mu * response.compensation;
}

namespace {

/// The zero-contract outcome shared by both exclusion paths (weight <= 0
/// and the max_k utility < 0 fallback).
DesignResult excluded_result(const SubproblemSpec& spec) {
  DesignResult result;
  result.excluded = true;
  result.contract = Contract();
  result.response = best_response(result.contract, spec.psi, spec.incentives);
  result.requester_utility = 0.0;
  return result;
}

/// Stable per-spec key for fault injection: mixes the bit patterns of the
/// fields that distinguish one subproblem from another.
std::uint64_t fault_key(const SubproblemSpec& spec) {
  std::uint64_t bits_w = 0;
  std::uint64_t bits_mu = 0;
  std::memcpy(&bits_w, &spec.weight, sizeof(bits_w));
  std::memcpy(&bits_mu, &spec.mu, sizeof(bits_mu));
  return bits_w ^ (bits_mu * 0x9e3779b97f4a7c15ULL) ^
         (static_cast<std::uint64_t>(spec.intervals) << 48);
}

}  // namespace

DesignTable build_design_table(const SubproblemSpec& spec) {
  spec.validate();
  const double delta = spec.delta();
  const std::size_t m = spec.intervals;
  DesignTable table;
  table.candidates.reserve(m);
  for (std::size_t k = 1; k <= m; ++k) {
    CandidateOutcome outcome;
    outcome.contract = build_candidate(spec.psi, delta, m, k, spec.incentives);
    outcome.response =
        best_response(outcome.contract, spec.psi, spec.incentives);
    table.candidates.push_back(std::move(outcome));
  }
  return table;
}

DesignResult resolve_design(const SubproblemSpec& spec,
                            const DesignTable& table) {
  spec.validate();

  // Non-positive feedback weight: no payment is worth it; exclude (§V's
  // "automatically eliminated" workers get the zero contract). The
  // requester drops their feedback entirely: zero utility, zero pay.
  if (spec.weight <= 0.0) return excluded_result(spec);

  CCD_FAULT_POINT("contract.design", fault_key(spec), ContractError);

  const std::size_t m = spec.intervals;
  CCD_CHECK_MSG(table.candidates.size() == m,
                "design table does not match spec.intervals");

  DesignResult result;
  result.utility_by_k.assign(m, 0.0);
  result.pay_by_k.assign(m, 0.0);
  bool have_best = false;
  for (std::size_t k = 1; k <= m; ++k) {
    const CandidateOutcome& candidate = table.candidates[k - 1];
    const double utility = requester_utility(spec, candidate.response);
    result.utility_by_k[k - 1] = utility;
    result.pay_by_k[k - 1] = candidate.response.compensation;
    if (!have_best || utility > result.requester_utility) {
      have_best = true;
      result.requester_utility = utility;
      result.k_opt = k;
      result.contract = candidate.contract;
      result.response = candidate.response;
    }
  }

  // §V elimination fallback: when even the best candidate loses the
  // requester money, the zero contract (utility 0) strictly dominates.
  // Keep the per-k diagnostics so callers can see what was rejected.
  if (result.requester_utility < 0.0) {
    DesignResult fallback = excluded_result(spec);
    fallback.utility_by_k = std::move(result.utility_by_k);
    fallback.pay_by_k = std::move(result.pay_by_k);
    return fallback;
  }

  const double delta = spec.delta();
  result.upper_bound =
      theorem41_upper_bound(spec.psi, spec.weight, spec.mu,
                            spec.incentives.beta, delta, m,
                            spec.incentives.omega);
  result.lower_bound = theorem41_lower_bound(
      spec.psi, spec.weight, spec.mu, spec.incentives.beta, delta,
      result.k_opt);
  return result;
}

DesignResult design_contract(const SubproblemSpec& spec) {
  spec.validate();
  if (spec.weight <= 0.0) return excluded_result(spec);
  return resolve_design(spec, build_design_table(spec));
}

}  // namespace ccd::contract
