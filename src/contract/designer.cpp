#include "contract/designer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ccd::contract {

double SubproblemSpec::resolved_domain() const {
  return effort_domain > 0.0 ? effort_domain : psi.usable_domain();
}

double SubproblemSpec::delta() const {
  return resolved_domain() / static_cast<double>(intervals);
}

void SubproblemSpec::validate() const {
  CCD_CHECK_MSG(mu > 0.0, "mu must be positive");
  CCD_CHECK_MSG(intervals >= 1, "need at least one effort interval");
  CCD_CHECK_MSG(incentives.beta > 0.0, "beta must be positive");
  CCD_CHECK_MSG(incentives.omega >= 0.0, "omega must be non-negative");
  const double domain = resolved_domain();
  CCD_CHECK_MSG(domain > 0.0, "effort domain must be positive");
  CCD_CHECK_MSG(psi.increasing_on(domain),
                "psi must be strictly increasing on the effort domain");
}

double requester_utility(const SubproblemSpec& spec,
                         const BestResponse& response) {
  return spec.weight * response.feedback - spec.mu * response.compensation;
}

DesignResult design_contract(const SubproblemSpec& spec) {
  spec.validate();
  DesignResult result;

  // Non-positive feedback weight: no payment is worth it; exclude (§V's
  // "automatically eliminated" workers get the zero contract). The
  // requester drops their feedback entirely: zero utility, zero pay.
  if (spec.weight <= 0.0) {
    result.excluded = true;
    result.contract = Contract();
    result.response =
        best_response(result.contract, spec.psi, spec.incentives);
    result.requester_utility = 0.0;
    return result;
  }

  const double delta = spec.delta();
  const std::size_t m = spec.intervals;

  result.utility_by_k.assign(m, 0.0);
  result.pay_by_k.assign(m, 0.0);
  bool have_best = false;
  for (std::size_t k = 1; k <= m; ++k) {
    Contract candidate = build_candidate(spec.psi, delta, m, k,
                                         spec.incentives);
    const BestResponse response =
        best_response(candidate, spec.psi, spec.incentives);
    const double utility = requester_utility(spec, response);
    result.utility_by_k[k - 1] = utility;
    result.pay_by_k[k - 1] = response.compensation;
    if (!have_best || utility > result.requester_utility) {
      have_best = true;
      result.requester_utility = utility;
      result.k_opt = k;
      result.contract = std::move(candidate);
      result.response = response;
    }
  }

  result.upper_bound =
      theorem41_upper_bound(spec.psi, spec.weight, spec.mu,
                            spec.incentives.beta, delta, m,
                            spec.incentives.omega);
  result.lower_bound = theorem41_lower_bound(
      spec.psi, spec.weight, spec.mu, spec.incentives.beta, delta,
      result.k_opt);
  return result;
}

}  // namespace ccd::contract
