// Structure-of-arrays fleet layout for batch contract design.
//
// design_contracts_batch takes an array-of-structs (vector<SubproblemSpec>)
// and regroups it on every call; FleetSoA is that grouping made into a
// first-class, reusable layout. Workers are bucketed by spec class (the
// weight-excluded DesignCacheKey — same canonicalization, so a class is
// exactly a cache entry) with the per-class scalar fields in contiguous
// arrays and the per-worker weights gathered contiguously per class (CSR).
// One class then designs with a single k-sweep and one vectorized
// resolve_class pass over its weight slice (see ksweep.hpp), and the
// results land in SoA output arrays with no per-worker heap allocation.
//
// design_fleet is the fleet-native front end; design_contracts_batch is
// reimplemented on top of the same grouping and remains the
// AoS-compatible, bitwise-reference entry point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "contract/ksweep.hpp"
#include "util/metrics.hpp"

namespace ccd::util {
class CancellationToken;
class ThreadPool;
}

namespace ccd::contract {

/// Fleet of design subproblems grouped by spec class, stored as contiguous
/// arrays. Build with from_specs(); all invariants below hold afterwards.
/// Class fields store the *canonical* key values (-0.0 normalized to +0.0,
/// domain resolved), so sign-of-zero twins land in one class; per-worker
/// weights are stored verbatim.
struct FleetSoA {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Per-class scalar fields (length = classes()), indexed by class id in
  // first-occurrence order over the input specs.
  std::vector<double> r2, r1, r0;        ///< psi coefficients
  std::vector<double> beta, omega;       ///< worker incentives
  std::vector<double> mu;                ///< requester compensation weight
  std::vector<std::size_t> intervals;    ///< m
  std::vector<double> domain;            ///< resolved effort domain (> 0)
  /// First worker (original index) of the class with weight > 0, or npos
  /// when every member is weight-excluded (no table needed: §V zero
  /// contract for all of them).
  std::vector<std::size_t> first_positive;

  // CSR worker grouping.
  std::vector<std::size_t> class_begin;  ///< length classes() + 1
  /// Grouped position -> original worker index. Workers of class c occupy
  /// order[class_begin[c] .. class_begin[c + 1]), in input order.
  std::vector<std::size_t> order;
  /// Weights gathered into grouped order (parallel to `order`) — the
  /// contiguous slice the SIMD resolve reads.
  std::vector<double> grouped_weight;

  // Per-worker fields in original order (length = workers()).
  std::vector<double> weight;
  std::vector<std::size_t> class_of;

  std::size_t workers() const { return weight.size(); }
  std::size_t classes() const { return intervals.size(); }

  /// Validate and group specs. Throws what SubproblemSpec::validate()
  /// throws, on the first invalid spec (in input order, matching the
  /// batch path's sequential validation).
  static FleetSoA from_specs(const std::vector<SubproblemSpec>& specs);

  /// Reconstruct the class's spec with weight 1. Equal (as values) to any
  /// member spec of the class; bitwise-equal except where canonicalization
  /// flipped a -0.0 field or resolved a defaulted domain.
  SubproblemSpec class_spec(std::size_t c) const;

  /// class_spec(class_of[i]) with the worker's own weight.
  SubproblemSpec worker_spec(std::size_t i) const;
};

struct FleetOptions {
  /// Pool for the per-class sweep fan-out; null uses util::shared_pool().
  util::ThreadPool* pool = nullptr;
  /// Cache reused across calls; null gives the call a private cache.
  DesignCache* cache = nullptr;
  /// When non-null, each class's k-sweep records its wall time here.
  util::metrics::Histogram* sweep_histogram = nullptr;
  /// Cooperative cancellation: polled between sweeps and between classes
  /// during resolve. Workers skipped by cancellation have resolved[i] == 0.
  const util::CancellationToken* cancel = nullptr;
  /// kAuto lets the library pick (vectorized); kScalar forces the
  /// per-worker resolve_design reference path.
  SweepKernel kernel = SweepKernel::kAuto;
  /// Benchmark/test hook: with the vectorized kernel, run the portable
  /// fallback loop even when AVX2 is available.
  bool force_portable = false;
};

/// Fleet design output, SoA. All per-worker arrays are indexed by the
/// *original* worker index and have length fleet.workers(). Excluded
/// workers (weight <= 0, or §V fallback when max_k utility < 0) carry the
/// zero contract: k_opt 0, utility/bounds 0, the zero-contract best
/// response, excluded 1.
struct FleetDesignResult {
  std::vector<std::size_t> k_opt;  ///< 1-based; 0 when excluded
  std::vector<double> requester_utility;
  std::vector<double> upper_bound;
  std::vector<double> lower_bound;
  // Worker best-response fields (BestResponse scalarized).
  std::vector<double> effort;
  std::vector<double> worker_utility;
  std::vector<double> feedback;
  std::vector<double> compensation;
  std::vector<std::size_t> response_interval;
  std::vector<std::uint8_t> excluded;
  /// 1 iff the worker was actually designed (all-ones unless cancelled).
  std::vector<std::uint8_t> resolved;
  /// Per-class design tables (null for all-excluded classes and classes
  /// skipped by cancellation). Contracts are not materialized per worker:
  /// worker i's contract is tables[fleet.class_of[i]]->candidates
  /// [k_opt[i] - 1].contract, shared across the class.
  std::vector<std::shared_ptr<const DesignTable>> tables;

  std::size_t workers() const { return k_opt.size(); }

  /// Scalarize worker i to the AoS DesignResult by re-resolving against
  /// the class table (interop/diagnostics, not the hot path). Bitwise-
  /// identical to design_contract(fleet.worker_spec(i)).
  DesignResult result_at(const FleetSoA& fleet, std::size_t i) const;
};

/// Per-class table acquisition shared by design_fleet and
/// design_contracts_batch: one cache.table_for per class that has a
/// positive-weight worker, distinct classes in parallel. `original_specs`,
/// when non-null, supplies the representative spec objects verbatim (the
/// batch path passes the caller's specs so a pre-existing cache keyed on
/// non-canonical bit patterns behaves exactly as before); otherwise the
/// representative is fleet.worker_spec(first_positive[c]).
struct FleetTableSet {
  std::vector<std::shared_ptr<const DesignTable>> tables;  ///< per class
  std::size_t sweeps_computed = 0;
  std::uint64_t sweep_steps_computed = 0;
};

FleetTableSet acquire_fleet_tables(
    const FleetSoA& fleet, DesignCache& cache, util::ThreadPool& pool,
    util::metrics::Histogram* sweep_histogram,
    const util::CancellationToken* cancel,
    const std::vector<SubproblemSpec>* original_specs = nullptr);

/// Design the whole fleet: per-class k-sweeps through the cache, then a
/// vectorized (or scalar-reference, per options.kernel) per-worker
/// resolve straight into SoA outputs. Scalar-kernel results are bitwise-
/// identical to design_contract on each worker_spec; the SIMD kernel is
/// bitwise-identical on builds without floating-point contraction (see
/// ksweep.hpp) and value-identical otherwise. `stats`, when non-null,
/// receives this call's cache counters (same accounting as
/// design_contracts_batch).
FleetDesignResult design_fleet(const FleetSoA& fleet,
                               const FleetOptions& options = {},
                               DesignCacheStats* stats = nullptr);

}  // namespace ccd::contract
