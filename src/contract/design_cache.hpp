// Spec-keyed memoization of the contract designer's k-sweep, and a batched
// front end for fleet-scale design.
//
// The pipeline's decomposition (§IV-B) hands every worker of the same
// detected class an identical (psi, beta, omega, mu, intervals, domain)
// subproblem — only the Eq. 5 weight differs. The k-sweep
// (build_candidate + best_response per k) is weight-independent, so the
// cache computes one DesignTable per distinct spec and resolves each
// worker as a cheap argmax_k (weight * feedback_k - mu * pay_k) over the
// cached per-k table. Results are bitwise-identical to the uncached
// per-worker design_contract() path (tested), and independent of thread
// count: parallelism only reorders which spec computes its table first,
// never what the table contains.
//
// Keys compare doubles bitwise. That is deliberate: the sharing pattern we
// exploit is "same class fit object copied into many specs", which is
// exact; a near-miss spec simply misses and computes its own table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "contract/designer.hpp"
#include "contract/ksweep.hpp"
#include "util/metrics.hpp"

namespace ccd::util {
class CancellationToken;
class ThreadPool;
}

namespace ccd::contract {

struct FleetSoA;
struct FleetOptions;
struct FleetDesignResult;

/// Canonical cache key: every SubproblemSpec field the k-sweep reads —
/// i.e. everything except `weight`. The effort domain is stored resolved,
/// so an explicit domain equal to psi.usable_domain() shares a table with
/// the default.
struct DesignCacheKey {
  double r2 = 0.0;  ///< psi coefficients
  double r1 = 0.0;
  double r0 = 0.0;
  double beta = 0.0;
  double omega = 0.0;
  double mu = 0.0;
  std::uint64_t intervals = 0;
  double domain = 0.0;  ///< resolved effort domain

  /// Canonicalizes the double fields: -0.0 normalizes to +0.0, so the
  /// documented "same class fit copied into many specs" sharing survives a
  /// sign-of-zero difference (e.g. omega = -0.0 vs 0.0).
  static DesignCacheKey of(const SubproblemSpec& spec);

  /// Equality is *bitwise* (per field, on the bit patterns), matching
  /// DesignCacheKeyHash. A defaulted (value) equality would violate the
  /// unordered_map invariant "equal keys hash equally": -0.0 == +0.0
  /// compares true but the bit patterns hash differently (duplicate tables
  /// and missed hits), and a NaN field would compare unequal to itself so
  /// such a key could never be found again.
  bool operator==(const DesignCacheKey& other) const;
};

struct DesignCacheKeyHash {
  std::size_t operator()(const DesignCacheKey& key) const;
};

/// Counters describing how much k-sweep work the cache absorbed. A
/// "lookup" is one cacheable resolution (spec.weight > 0; weight-excluded
/// workers never touch the cache). One k-sweep is `intervals` candidate
/// builds + best responses, so the uncached path would have run
/// `lookups` sweeps where the cache ran `misses`.
///
/// These per-cache (or per-call) stats are snapshots taken under the cache
/// mutex / after the batch joins — safe to read single-threaded. The
/// authoritative process-wide counters are the atomic `ccd.cache.*`
/// registry metrics (see util/metrics.hpp), which every cache mirrors its
/// increments into; hot paths must never bump plain fields concurrently.
struct DesignCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Candidate evaluations actually run (sum of intervals over misses).
  std::size_t sweep_steps_computed = 0;
  /// Candidate evaluations served from cache (sum of intervals over hits).
  std::size_t sweep_steps_avoided = 0;

  DesignCacheStats& operator+=(const DesignCacheStats& other);
};

/// Thread-safe table cache. Lookup and insertion hold a mutex; table
/// construction runs outside it, so concurrent misses on *different* specs
/// proceed in parallel. Two threads missing the same spec may both build
/// it — the first insert wins and both use that table, keeping results
/// deterministic.
class DesignCache {
 public:
  /// Design one contract through the cache. Equivalent (bitwise) to
  /// design_contract(spec).
  DesignResult design(const SubproblemSpec& spec);

  /// Fetch (or compute and insert) the table for a spec. `was_hit`, when
  /// non-null, reports whether the table already existed.
  std::shared_ptr<const DesignTable> table_for(const SubproblemSpec& spec,
                                               bool* was_hit = nullptr);

  DesignCacheStats stats() const;
  std::size_t size() const;
  /// Drops tables and resets the per-cache counters (the dropped-table
  /// count is added to the `ccd.cache.evictions` registry counter).
  void clear();

 private:
  friend std::vector<DesignResult> design_contracts_batch(
      const std::vector<SubproblemSpec>&, const struct BatchOptions&,
      DesignCacheStats*);
  friend FleetDesignResult design_fleet(const FleetSoA&, const FleetOptions&,
                                        DesignCacheStats*);

  void record(const DesignCacheStats& delta);

  mutable std::mutex mutex_;
  std::unordered_map<DesignCacheKey, std::shared_ptr<const DesignTable>,
                     DesignCacheKeyHash>
      tables_;
  DesignCacheStats stats_;
};

struct BatchOptions {
  /// Pool for the fan-out; null uses util::shared_pool().
  util::ThreadPool* pool = nullptr;
  /// Cache reused across calls (e.g. across pipeline rounds); null gives
  /// the call a private cache.
  DesignCache* cache = nullptr;
  /// When non-null, each distinct-spec k-sweep records its wall time here
  /// (microseconds) — the batched path's per-community/per-class solve
  /// spans. Per-worker resolves are not timed: they are orders of
  /// magnitude cheaper than a sweep and the clock reads would dominate.
  util::metrics::Histogram* sweep_histogram = nullptr;
  /// Cooperative cancellation (null runs to completion). Polled between
  /// k-sweeps and per resolved worker; after cancellation the batch
  /// returns with the remaining results left default-constructed. Callers
  /// use `resolved` to tell completed entries apart.
  const util::CancellationToken* cancel = nullptr;
  /// When non-null, resized to specs.size(); (*resolved)[i] is 1 iff
  /// results[i] was actually designed (always all-ones unless cancelled).
  std::vector<std::uint8_t>* resolved = nullptr;
  /// Per-worker resolve kernel. Defaults to the scalar reference path,
  /// which is bitwise-identical to design_contract on every build — the
  /// batch API's documented contract (checkpoint/resume and the wire
  /// protocol replay against it). kSimd/kAuto select the vectorized
  /// tableau resolve (see ksweep.hpp): identical results on builds without
  /// floating-point contraction, last-ulp differences possible with it.
  SweepKernel kernel = SweepKernel::kScalar;
};

/// Design contracts for a whole fleet: one k-sweep per distinct spec
/// (computed in parallel), then a parallel per-worker resolve. Output
/// order matches `specs`, and results[i] is bitwise-identical to
/// design_contract(specs[i]) regardless of thread count or cache state.
/// `stats`, when non-null, receives this call's counters (prior contents
/// overwritten).
std::vector<DesignResult> design_contracts_batch(
    const std::vector<SubproblemSpec>& specs,
    const BatchOptions& options = {}, DesignCacheStats* stats = nullptr);

}  // namespace ccd::contract
