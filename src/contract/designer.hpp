// Per-subproblem contract design (§IV-C): build the m candidate contracts
// ξ^(1)..ξ^(m), evaluate the worker's exact best response under each, and
// keep the candidate maximizing the requester's per-worker utility
// w * psi(y*) - mu * pay(psi(y*)) — the text's reading of Eq. 43.
//
// One SubproblemSpec corresponds to one decomposed subproblem of the
// bilevel program: a single worker, or a collusive community treated as a
// meta-worker with the community effort function (Eq. 3). Workers whose
// feedback weight w is non-positive get the zero contract — they are
// "automatically eliminated" (paper §V): no payment can make their feedback
// worth buying. The same elimination rule applies when every candidate
// contract loses the requester money (max_k utility < 0): the requester
// strictly prefers the zero contract's utility of 0.
//
// The k-sweep (build_candidate + best_response per k) depends only on
// (psi, beta, omega, intervals, effort domain) — not on `weight` — so it is
// factored out as build_design_table() and shared across all workers of a
// detected class; resolve_design() scalarizes a table for one worker's
// weight. design_contract() composes the two and is the reference
// sequential path; design_cache.hpp provides the memoized batch front end.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "contract/bounds.hpp"
#include "contract/candidate.hpp"
#include "contract/contract.hpp"
#include "contract/worker_response.hpp"
#include "effort/effort_model.hpp"

namespace ccd::contract {

struct SubproblemSpec {
  effort::QuadraticEffort psi{-1.0, 8.0, 2.0};
  WorkerIncentives incentives{};
  /// Requester's weight on this worker's feedback (Eq. 5 output).
  double weight = 1.0;
  /// Requester's weight on compensation (mu > 0).
  double mu = 1.0;
  /// Number of effort intervals m.
  std::size_t intervals = 20;
  /// Effort-domain cap; <= 0 selects psi.usable_domain() (95% of the peak).
  double effort_domain = -1.0;

  double resolved_domain() const;
  double delta() const;
  void validate() const;
};

struct DesignResult {
  Contract contract;
  /// Selected target interval (0 when the worker is excluded).
  std::size_t k_opt = 0;
  /// Worker's exact best response under the final contract.
  BestResponse response;
  /// Requester per-worker utility at the best response.
  double requester_utility = 0.0;
  /// Theorem 4.1 bounds (0 for excluded workers).
  double upper_bound = 0.0;
  double lower_bound = 0.0;
  /// Requester utility each candidate k would have achieved (diagnostics;
  /// empty for weight-excluded workers, populated — all negative — for
  /// workers excluded by the max_k utility < 0 fallback).
  std::vector<double> utility_by_k;
  /// Compensation each candidate k would have paid (same indexing; feeds
  /// the budget-feasible allocator in contract/budget.hpp).
  std::vector<double> pay_by_k;
  bool excluded = false;
};

/// Requester's per-worker utility for a given response.
double requester_utility(const SubproblemSpec& spec,
                         const BestResponse& response);

/// Candidate contract ξ^(k) together with the worker's exact best response
/// to it — the weight-independent work of one k-sweep step.
struct CandidateOutcome {
  Contract contract;
  BestResponse response;
};

/// The weight-independent slice of design_contract: candidates and best
/// responses for k = 1..spec.intervals. Workers of the same detected class
/// share (psi, beta, omega, mu, intervals, domain) and differ only in
/// weight, so one table serves the whole class (see design_cache.hpp).
struct DesignTable {
  std::vector<CandidateOutcome> candidates;  ///< indexed by k - 1
};

/// Run the k-sweep for a spec (ignores spec.weight).
DesignTable build_design_table(const SubproblemSpec& spec);

/// Scalarize a precomputed table for one worker's weight:
/// argmax_k (weight * feedback_k - mu * pay_k), Theorem 4.1 bounds, and
/// the §V exclusion fallback. Bitwise-identical to design_contract(spec)
/// when the table was built from the same spec. The table is only read
/// when spec.weight > 0, so weight-excluded workers may pass an empty one.
DesignResult resolve_design(const SubproblemSpec& spec,
                            const DesignTable& table);

/// Solve one subproblem end to end (build_design_table + resolve_design).
DesignResult design_contract(const SubproblemSpec& spec);

}  // namespace ccd::contract
