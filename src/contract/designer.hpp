// Per-subproblem contract design (§IV-C): build the m candidate contracts
// ξ^(1)..ξ^(m), evaluate the worker's exact best response under each, and
// keep the candidate maximizing the requester's per-worker utility
// w * psi(y*) - mu * pay(psi(y*)) — the text's reading of Eq. 43.
//
// One SubproblemSpec corresponds to one decomposed subproblem of the
// bilevel program: a single worker, or a collusive community treated as a
// meta-worker with the community effort function (Eq. 3). Workers whose
// feedback weight w is non-positive get the zero contract — they are
// "automatically eliminated" (paper §V): no payment can make their feedback
// worth buying.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "contract/bounds.hpp"
#include "contract/candidate.hpp"
#include "contract/contract.hpp"
#include "contract/worker_response.hpp"
#include "effort/effort_model.hpp"

namespace ccd::contract {

struct SubproblemSpec {
  effort::QuadraticEffort psi{-1.0, 8.0, 2.0};
  WorkerIncentives incentives{};
  /// Requester's weight on this worker's feedback (Eq. 5 output).
  double weight = 1.0;
  /// Requester's weight on compensation (mu > 0).
  double mu = 1.0;
  /// Number of effort intervals m.
  std::size_t intervals = 20;
  /// Effort-domain cap; <= 0 selects psi.usable_domain() (95% of the peak).
  double effort_domain = -1.0;

  double resolved_domain() const;
  double delta() const;
  void validate() const;
};

struct DesignResult {
  Contract contract;
  /// Selected target interval (0 when the worker is excluded).
  std::size_t k_opt = 0;
  /// Worker's exact best response under the final contract.
  BestResponse response;
  /// Requester per-worker utility at the best response.
  double requester_utility = 0.0;
  /// Theorem 4.1 bounds (0 for excluded workers).
  double upper_bound = 0.0;
  double lower_bound = 0.0;
  /// Requester utility each candidate k would have achieved (diagnostics;
  /// empty for excluded workers).
  std::vector<double> utility_by_k;
  /// Compensation each candidate k would have paid (same indexing; feeds
  /// the budget-feasible allocator in contract/budget.hpp).
  std::vector<double> pay_by_k;
  bool excluded = false;
};

/// Requester's per-worker utility for a given response.
double requester_utility(const SubproblemSpec& spec,
                         const BestResponse& response);

/// Solve one subproblem end to end.
DesignResult design_contract(const SubproblemSpec& spec);

}  // namespace ccd::contract
