#include "contract/baselines.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace ccd::contract {

FixedContractOutcome fixed_threshold_baseline(const SubproblemSpec& spec,
                                              double payment, double y_min) {
  spec.validate();
  CCD_CHECK_MSG(payment >= 0.0, "fixed payment must be non-negative");
  CCD_CHECK_MSG(y_min >= 0.0, "threshold effort must be non-negative");
  const auto& psi = spec.psi;
  const double beta = spec.incentives.beta;
  const double omega = spec.incentives.omega;
  const double limit = psi.y_peak();

  // Best utility below the threshold (payment 0): maximize
  // omega psi(y) - beta y on [0, y_min).
  double best_below_y = 0.0;
  double best_below = omega * psi(0.0);
  if (omega > 0.0) {
    const double y_star = psi.derivative_inverse(beta / omega);
    if (y_star > 0.0 && y_star < y_min) {
      const double u = omega * psi(y_star) - beta * y_star;
      if (u > best_below) {
        best_below = u;
        best_below_y = y_star;
      }
    }
  }

  // Best utility meeting the threshold: payment + omega psi(y) - beta y on
  // [y_min, limit]; the free part is maximized at y_min or the stationary
  // point of the feedback motive.
  double best_meet_y = y_min;
  double best_meet = payment + omega * psi(y_min) - beta * y_min;
  if (omega > 0.0) {
    const double y_star = psi.derivative_inverse(beta / omega);
    if (y_star > y_min && y_star < limit) {
      const double u = payment + omega * psi(y_star) - beta * y_star;
      if (u > best_meet) {
        best_meet = u;
        best_meet_y = y_star;
      }
    }
  }

  FixedContractOutcome out;
  out.accepted = best_meet > best_below + 1e-12;
  out.effort = out.accepted ? best_meet_y : best_below_y;
  out.feedback = psi(out.effort);
  out.compensation = out.accepted ? payment : 0.0;
  out.worker_utility = out.accepted ? best_meet : best_below;
  out.requester_utility =
      spec.weight * out.feedback - spec.mu * out.compensation;
  return out;
}

OracleOutcome oracle_optimal(const SubproblemSpec& spec,
                             std::size_t grid_points) {
  spec.validate();
  CCD_CHECK_MSG(grid_points >= 2, "oracle grid needs at least two points");
  const auto& psi = spec.psi;
  const double beta = spec.incentives.beta;
  const double omega = spec.incentives.omega;
  const double domain = spec.resolved_domain();

  OracleOutcome best;
  best.effort = 0.0;
  best.compensation = 0.0;
  best.requester_utility = spec.weight * psi(0.0);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double y = domain * static_cast<double>(i) /
                     static_cast<double>(grid_points - 1);
    const double c_min =
        std::max(0.0, beta * y - omega * (psi(y) - psi(0.0)));
    const double utility = spec.weight * psi(y) - spec.mu * c_min;
    if (utility > best.requester_utility) {
      best.effort = y;
      best.compensation = c_min;
      best.requester_utility = utility;
    }
  }
  return best;
}

bool OracleCache::Key::operator==(const Key& other) const {
  // Bitwise, matching KeyHash (see DesignCacheKey::operator== for why a
  // value comparison would break the unordered_map invariants).
  return spec == other.spec &&
         std::bit_cast<std::uint64_t>(weight) ==
             std::bit_cast<std::uint64_t>(other.weight) &&
         grid_points == other.grid_points;
}

std::size_t OracleCache::KeyHash::operator()(const Key& key) const {
  std::size_t h = DesignCacheKeyHash{}(key.spec);
  const auto mix = [&h](std::uint64_t v) {
    h ^= std::hash<std::uint64_t>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  mix(std::bit_cast<std::uint64_t>(key.weight));
  mix(key.grid_points);
  return h;
}

OracleOutcome OracleCache::optimal(const SubproblemSpec& spec,
                                   std::size_t grid_points) {
  Key key;
  key.spec = DesignCacheKey::of(spec);
  key.weight = spec.weight + 0.0;  // -0.0 canonicalizes to +0.0
  key.grid_points = grid_points;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Compute outside the lock; concurrent misses on the same key both sweep
  // and the first insert wins (identical values either way).
  const OracleOutcome outcome = oracle_optimal(spec, grid_points);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, outcome);
  ++misses_;
  return it->second;
}

std::size_t OracleCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t OracleCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t OracleCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace ccd::contract
