// Exact worker best response to a contract (the lower level of the bilevel
// program, Eq. 12/15/17).
//
// A worker with incentives (beta, omega) facing contract f and effort
// function psi maximizes
//
//   F(y) = f(psi(y)) - beta * y + omega * psi(y),
//
// honest workers being the omega = 0 special case (§IV-C). On each effort
// interval [(l-1)δ, lδ) the objective is smooth and concave, so the interval
// maximum is at an endpoint or at the stationary point
// psi'(y) = beta / (alpha_l + omega) (Lemma 4.1's three cases); the global
// best response is the argmax over all interval candidates, the
// participation point y = 0, and — for omega > 0 — the region beyond the
// last knot where the contract has saturated.
//
// Note on Lemma 4.1: because psi' is *decreasing*, Case I (non-increasing
// objective) holds iff the derivative is <= 0 at the *left* endpoint, i.e.
// alpha <= beta/psi'((l-1)δ) - omega, and Case II iff it is >= 0 at the
// *right* endpoint, i.e. alpha >= beta/psi'(lδ) - omega. The paper's
// statement prints these two boundaries swapped; we implement (and test)
// the consistent version.
#pragma once

#include <cstddef>
#include <vector>

#include "contract/contract.hpp"
#include "effort/effort_model.hpp"

namespace ccd::contract {

/// Worker incentive parameters (paper's beta and omega weights).
struct WorkerIncentives {
  double beta = 1.0;   ///< effort cost weight (> 0)
  double omega = 0.0;  ///< malicious feedback-influence weight (>= 0; 0 = honest)
};

/// Lemma 4.1's classification of a contract piece.
enum class SlopeCase {
  kNonIncreasing,  ///< Case I:   worker sits at the interval's left end
  kNonDecreasing,  ///< Case II:  worker pushes to the interval's right end
  kInterior,       ///< Case III: stationary point inside the interval
};

/// Classify the contract piece on [(l-1)δ, lδ) with slope `alpha`
/// (l is 1-based).
SlopeCase classify_piece(const effort::QuadraticEffort& psi,
                         const WorkerIncentives& inc, double alpha,
                         std::size_t l, double delta);

/// Case-III stationary effort for slope `alpha` (Eq. 31).
double stationary_effort(const effort::QuadraticEffort& psi,
                         const WorkerIncentives& inc, double alpha);

struct BestResponse {
  double effort = 0.0;
  double utility = 0.0;       ///< worker's utility at the best response
  double feedback = 0.0;      ///< psi(effort)
  double compensation = 0.0;  ///< contract payment at that feedback
  /// 1-based interval index containing the effort (0 when effort == 0,
  /// intervals()+1 when the worker overshoots past the last knot).
  std::size_t interval = 0;
};

/// Worker utility at a specific effort level.
double worker_utility(const Contract& contract,
                      const effort::QuadraticEffort& psi,
                      const WorkerIncentives& inc, double y);

/// Exact global best response. `effort_limit` caps the worker's feasible
/// effort (defaults to psi.y_peak(), beyond which more effort cannot raise
/// feedback and strictly loses utility).
///
/// `scratch`, when non-null, is reused for the internal candidate-effort
/// list instead of allocating a fresh vector — the k-sweep calls
/// best_response once per candidate contract, and the allocation churn
/// dominates on small m. Contents are overwritten; results are
/// bitwise-identical either way.
BestResponse best_response(const Contract& contract,
                           const effort::QuadraticEffort& psi,
                           const WorkerIncentives& inc,
                           double effort_limit = -1.0,
                           std::vector<double>* scratch = nullptr);

}  // namespace ccd::contract
