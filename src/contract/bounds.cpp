#include "contract/bounds.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ccd::contract {

double lemma42_compensation_upper(const effort::QuadraticEffort& psi,
                                  double beta, double delta, std::size_t k) {
  CCD_CHECK_MSG(beta > 0.0 && delta > 0.0 && k >= 1,
                "lemma42 parameter domain");
  const double r2 = psi.r2();
  const double r1 = psi.r1();
  const double kd = static_cast<double>(k) * delta;
  const double denom = 2.0 * r2 * (static_cast<double>(k) - 1.0) * delta + r1;
  CCD_CHECK_MSG(denom > 0.0, "lemma42 requires the grid inside psi's domain");
  return -2.0 * beta * r2 * static_cast<double>(k) * delta * delta / denom +
         beta * kd;
}

double lemma43_compensation_lower(const effort::QuadraticEffort& psi,
                                  double beta, double delta, std::size_t k,
                                  double omega) {
  CCD_CHECK_MSG(beta > 0.0 && delta > 0.0 && k >= 1,
                "lemma43 parameter domain");
  CCD_CHECK_MSG(omega >= 0.0, "lemma43 omega must be non-negative");
  const double kd = static_cast<double>(k) * delta;
  const double subsidy = omega * (psi(kd) - psi(0.0));
  return std::max(0.0, beta * (static_cast<double>(k) - 1.0) * delta - subsidy);
}

double theorem41_upper_bound(const effort::QuadraticEffort& psi, double w,
                             double mu, double beta, double delta,
                             std::size_t m, double omega) {
  CCD_CHECK_MSG(m >= 1, "theorem41 needs at least one interval");
  CCD_CHECK_MSG(omega >= 0.0, "theorem41 omega must be non-negative");
  double best = -1e300;
  for (std::size_t l = 1; l <= m; ++l) {
    const double value =
        w * psi(delta * static_cast<double>(l)) -
        mu * lemma43_compensation_lower(psi, beta, delta, l, omega);
    best = std::max(best, value);
  }
  if (omega > 0.0) {
    // Free-rider region: with a saturated (flat) contract the worker still
    // exerts effort up to psi'(y) = beta/omega at zero pay.
    const double y_free =
        std::clamp(psi.derivative_inverse(beta / omega), 0.0, psi.y_peak());
    best = std::max(best, w * psi(y_free));
  }
  return best;
}

double theorem41_lower_bound(const effort::QuadraticEffort& psi, double w,
                             double mu, double beta, double delta,
                             std::size_t k_opt) {
  CCD_CHECK_MSG(k_opt >= 1, "theorem41 lower bound needs k_opt >= 1");
  return w * psi(delta * (static_cast<double>(k_opt) - 1.0)) -
         mu * lemma42_compensation_upper(psi, beta, delta, k_opt);
}

}  // namespace ccd::contract
