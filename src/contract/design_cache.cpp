#include "contract/design_cache.hpp"

#include <atomic>
#include <bit>
#include <utility>

#include "util/thread_pool.hpp"

namespace ccd::contract {
namespace {

// Table passed for weight-excluded specs; resolve_design never reads it
// when spec.weight <= 0.
const DesignTable kEmptyTable{};

// Process-wide atomic mirrors of every cache's counters (`ccd.cache.*`).
// Handles are resolved once; increments are lock-free and disarm to a
// branch (or compile out entirely under -DCCD_NO_METRICS).
struct CacheMetrics {
  util::metrics::Counter& lookups;
  util::metrics::Counter& hits;
  util::metrics::Counter& misses;
  util::metrics::Counter& sweep_steps_computed;
  util::metrics::Counter& sweep_steps_avoided;
  util::metrics::Counter& evictions;

  static CacheMetrics& get() {
    static CacheMetrics* const m = [] {
      util::metrics::MetricsRegistry& reg = util::metrics::registry();
      return new CacheMetrics{reg.counter("ccd.cache.lookups"),
                              reg.counter("ccd.cache.hits"),
                              reg.counter("ccd.cache.misses"),
                              reg.counter("ccd.cache.sweep_steps_computed"),
                              reg.counter("ccd.cache.sweep_steps_avoided"),
                              reg.counter("ccd.cache.evictions")};
    }();
    return *m;
  }

  void add(const DesignCacheStats& delta) {
    lookups.add(delta.lookups);
    hits.add(delta.hits);
    misses.add(delta.misses);
    sweep_steps_computed.add(delta.sweep_steps_computed);
    sweep_steps_avoided.add(delta.sweep_steps_avoided);
  }
};

}  // namespace

DesignCacheKey DesignCacheKey::of(const SubproblemSpec& spec) {
  DesignCacheKey key;
  key.r2 = spec.psi.r2();
  key.r1 = spec.psi.r1();
  key.r0 = spec.psi.r0();
  key.beta = spec.incentives.beta;
  key.omega = spec.incentives.omega;
  key.mu = spec.mu;
  key.intervals = spec.intervals;
  key.domain = spec.resolved_domain();
  return key;
}

std::size_t DesignCacheKeyHash::operator()(const DesignCacheKey& key) const {
  // boost::hash_combine-style mix over the bit patterns; doubles hash by
  // representation to mirror the key's bitwise equality.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::bit_cast<std::uint64_t>(key.r2));
  mix(std::bit_cast<std::uint64_t>(key.r1));
  mix(std::bit_cast<std::uint64_t>(key.r0));
  mix(std::bit_cast<std::uint64_t>(key.beta));
  mix(std::bit_cast<std::uint64_t>(key.omega));
  mix(std::bit_cast<std::uint64_t>(key.mu));
  mix(key.intervals);
  mix(std::bit_cast<std::uint64_t>(key.domain));
  return static_cast<std::size_t>(h);
}

DesignCacheStats& DesignCacheStats::operator+=(const DesignCacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  misses += other.misses;
  sweep_steps_computed += other.sweep_steps_computed;
  sweep_steps_avoided += other.sweep_steps_avoided;
  return *this;
}

DesignResult DesignCache::design(const SubproblemSpec& spec) {
  spec.validate();
  if (spec.weight <= 0.0) return resolve_design(spec, kEmptyTable);
  const std::shared_ptr<const DesignTable> table = table_for(spec);
  return resolve_design(spec, *table);
}

std::shared_ptr<const DesignTable> DesignCache::table_for(
    const SubproblemSpec& spec, bool* was_hit) {
  CacheMetrics& cm = CacheMetrics::get();
  const DesignCacheKey key = DesignCacheKey::of(spec);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tables_.find(key);
    if (it != tables_.end()) {
      ++stats_.lookups;
      ++stats_.hits;
      stats_.sweep_steps_avoided += spec.intervals;
      if (was_hit) *was_hit = true;
      cm.lookups.add(1);
      cm.hits.add(1);
      cm.sweep_steps_avoided.add(spec.intervals);
      return it->second;
    }
  }
  auto table = std::make_shared<const DesignTable>(build_design_table(spec));
  std::shared_ptr<const DesignTable> winner;
  bool inserted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto [it, fresh] = tables_.emplace(key, std::move(table));
    inserted = fresh;
    if (inserted) {
      ++stats_.misses;
      stats_.sweep_steps_computed += spec.intervals;
    } else {
      // Lost a race to another thread building the same spec: count as a
      // hit and use the winner's (identical) table.
      ++stats_.hits;
      stats_.sweep_steps_avoided += spec.intervals;
    }
    winner = it->second;
  }
  cm.lookups.add(1);
  if (inserted) {
    cm.misses.add(1);
    cm.sweep_steps_computed.add(spec.intervals);
  } else {
    cm.hits.add(1);
    cm.sweep_steps_avoided.add(spec.intervals);
  }
  if (was_hit) *was_hit = !inserted;
  return winner;
}

DesignCacheStats DesignCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DesignCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

void DesignCache::clear() {
  std::size_t dropped;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dropped = tables_.size();
    tables_.clear();
    stats_ = DesignCacheStats{};
  }
  CacheMetrics::get().evictions.add(dropped);
}

void DesignCache::record(const DesignCacheStats& delta) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ += delta;
  }
  CacheMetrics::get().add(delta);
}

std::vector<DesignResult> design_contracts_batch(
    const std::vector<SubproblemSpec>& specs, const BatchOptions& options,
    DesignCacheStats* stats) {
  DesignCache local_cache;
  DesignCache& cache = options.cache ? *options.cache : local_cache;
  util::ThreadPool& pool = options.pool ? *options.pool : util::shared_pool();

  const std::size_t n = specs.size();
  std::vector<DesignResult> results(n);
  std::vector<std::uint8_t> resolved_local;
  std::vector<std::uint8_t>& resolved =
      options.resolved ? *options.resolved : resolved_local;
  resolved.assign(n, 0);

  // Group cacheable specs (weight > 0) by canonical key; group order
  // follows first occurrence, so grouping itself is deterministic.
  constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);
  std::unordered_map<DesignCacheKey, std::size_t, DesignCacheKeyHash>
      group_of_key;
  std::vector<std::size_t> representative;  // group -> first spec index
  std::vector<std::size_t> group_of(n, kNoGroup);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].validate();
    if (specs[i].weight <= 0.0) continue;
    const DesignCacheKey key = DesignCacheKey::of(specs[i]);
    const auto [it, inserted] =
        group_of_key.emplace(key, representative.size());
    if (inserted) representative.push_back(i);
    group_of[i] = it->second;
  }

  // One k-sweep per distinct spec, distinct specs in parallel.
  std::vector<std::shared_ptr<const DesignTable>> tables(
      representative.size());
  std::atomic<std::size_t> computed{0};
  std::atomic<std::uint64_t> steps_computed{0};
  pool.parallel_for(representative.size(), [&](std::size_t g) {
    bool was_hit = false;
    {
      // Span of this distinct spec's design (the per-community solve span
      // when the spec is a community fit; a cache hit records the cheap
      // lookup instead of a sweep).
      util::metrics::ScopedTimer timer(options.sweep_histogram);
      tables[g] = cache.table_for(specs[representative[g]], &was_hit);
    }
    if (!was_hit) {
      computed.fetch_add(1, std::memory_order_relaxed);
      steps_computed.fetch_add(specs[representative[g]].intervals,
                               std::memory_order_relaxed);
    }
  }, options.cancel);

  // Per-worker resolve: cheap argmax over the shared table. Groups whose
  // sweep was skipped by cancellation have a null table; their workers
  // stay unresolved (results default-constructed, resolved flag 0).
  pool.parallel_for(n, [&](std::size_t i) {
    if (group_of[i] == kNoGroup) {
      results[i] = resolve_design(specs[i], kEmptyTable);
    } else if (tables[group_of[i]] != nullptr) {
      results[i] = resolve_design(specs[i], *tables[group_of[i]]);
    } else {
      return;
    }
    resolved[i] = 1;
  }, options.cancel);

  // Per-call counters: every cacheable spec the batch actually resolved is
  // one lookup; only the distinct specs not already in `cache` paid for a
  // sweep. Counting resolved specs (rather than all of them) keeps the
  // arithmetic consistent when cancellation skipped part of the batch.
  std::size_t cacheable = 0;
  std::size_t cacheable_steps = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (group_of[i] == kNoGroup || !resolved[i]) continue;
    ++cacheable;
    cacheable_steps += specs[i].intervals;
  }
  DesignCacheStats call_stats;
  call_stats.lookups = cacheable;
  call_stats.misses = computed.load();
  call_stats.hits =
      call_stats.lookups > call_stats.misses
          ? call_stats.lookups - call_stats.misses : 0;
  call_stats.sweep_steps_computed =
      static_cast<std::size_t>(steps_computed.load());
  call_stats.sweep_steps_avoided =
      cacheable_steps > call_stats.sweep_steps_computed
          ? cacheable_steps - call_stats.sweep_steps_computed : 0;
  if (stats) *stats = call_stats;

  // table_for() above only recorded one lookup per distinct group; fold in
  // the per-worker resolutions the batch served without touching the map,
  // so cumulative stats (and the process-wide `ccd.cache.*` registry
  // counters the cache mirrors into) count every resolution — also when
  // the batch ran on its own private cache.
  std::size_t groups_ran = 0;
  std::size_t groups_ran_steps = 0;
  for (std::size_t g = 0; g < representative.size(); ++g) {
    if (tables[g] == nullptr) continue;  // sweep skipped by cancellation
    ++groups_ran;
    groups_ran_steps += specs[representative[g]].intervals;
  }
  DesignCacheStats extra;
  extra.lookups = cacheable > groups_ran ? cacheable - groups_ran : 0;
  extra.hits = extra.lookups;
  extra.sweep_steps_avoided =
      cacheable_steps > groups_ran_steps ? cacheable_steps - groups_ran_steps
                                         : 0;
  cache.record(extra);

  return results;
}

}  // namespace ccd::contract
