#include "contract/design_cache.hpp"

#include <bit>
#include <utility>

namespace ccd::contract {
namespace {

// Table passed for weight-excluded specs; resolve_design never reads it
// when spec.weight <= 0.
const DesignTable kEmptyTable{};

// Process-wide atomic mirrors of every cache's counters (`ccd.cache.*`).
// Handles are resolved once; increments are lock-free and disarm to a
// branch (or compile out entirely under -DCCD_NO_METRICS).
struct CacheMetrics {
  util::metrics::Counter& lookups;
  util::metrics::Counter& hits;
  util::metrics::Counter& misses;
  util::metrics::Counter& sweep_steps_computed;
  util::metrics::Counter& sweep_steps_avoided;
  util::metrics::Counter& evictions;

  static CacheMetrics& get() {
    static CacheMetrics* const m = [] {
      util::metrics::MetricsRegistry& reg = util::metrics::registry();
      return new CacheMetrics{reg.counter("ccd.cache.lookups"),
                              reg.counter("ccd.cache.hits"),
                              reg.counter("ccd.cache.misses"),
                              reg.counter("ccd.cache.sweep_steps_computed"),
                              reg.counter("ccd.cache.sweep_steps_avoided"),
                              reg.counter("ccd.cache.evictions")};
    }();
    return *m;
  }

  void add(const DesignCacheStats& delta) {
    lookups.add(delta.lookups);
    hits.add(delta.hits);
    misses.add(delta.misses);
    sweep_steps_computed.add(delta.sweep_steps_computed);
    sweep_steps_avoided.add(delta.sweep_steps_avoided);
  }
};

}  // namespace

namespace {

// -0.0 -> +0.0; every other value (including NaN payloads) unchanged.
// Keys canonicalize zeros so bitwise equality still delivers the intended
// sharing for sign-of-zero twins.
double canonical_zero(double value) { return value == 0.0 ? 0.0 : value; }

}  // namespace

DesignCacheKey DesignCacheKey::of(const SubproblemSpec& spec) {
  DesignCacheKey key;
  key.r2 = canonical_zero(spec.psi.r2());
  key.r1 = canonical_zero(spec.psi.r1());
  key.r0 = canonical_zero(spec.psi.r0());
  key.beta = canonical_zero(spec.incentives.beta);
  key.omega = canonical_zero(spec.incentives.omega);
  key.mu = canonical_zero(spec.mu);
  key.intervals = spec.intervals;
  key.domain = canonical_zero(spec.resolved_domain());
  return key;
}

bool DesignCacheKey::operator==(const DesignCacheKey& other) const {
  const auto same = [](double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
  };
  return same(r2, other.r2) && same(r1, other.r1) && same(r0, other.r0) &&
         same(beta, other.beta) && same(omega, other.omega) &&
         same(mu, other.mu) && intervals == other.intervals &&
         same(domain, other.domain);
}

std::size_t DesignCacheKeyHash::operator()(const DesignCacheKey& key) const {
  // boost::hash_combine-style mix over the bit patterns; doubles hash by
  // representation to mirror the key's bitwise equality.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t v) {
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(std::bit_cast<std::uint64_t>(key.r2));
  mix(std::bit_cast<std::uint64_t>(key.r1));
  mix(std::bit_cast<std::uint64_t>(key.r0));
  mix(std::bit_cast<std::uint64_t>(key.beta));
  mix(std::bit_cast<std::uint64_t>(key.omega));
  mix(std::bit_cast<std::uint64_t>(key.mu));
  mix(key.intervals);
  mix(std::bit_cast<std::uint64_t>(key.domain));
  return static_cast<std::size_t>(h);
}

DesignCacheStats& DesignCacheStats::operator+=(const DesignCacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  misses += other.misses;
  sweep_steps_computed += other.sweep_steps_computed;
  sweep_steps_avoided += other.sweep_steps_avoided;
  return *this;
}

DesignResult DesignCache::design(const SubproblemSpec& spec) {
  spec.validate();
  if (spec.weight <= 0.0) return resolve_design(spec, kEmptyTable);
  const std::shared_ptr<const DesignTable> table = table_for(spec);
  return resolve_design(spec, *table);
}

std::shared_ptr<const DesignTable> DesignCache::table_for(
    const SubproblemSpec& spec, bool* was_hit) {
  CacheMetrics& cm = CacheMetrics::get();
  const DesignCacheKey key = DesignCacheKey::of(spec);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tables_.find(key);
    if (it != tables_.end()) {
      ++stats_.lookups;
      ++stats_.hits;
      stats_.sweep_steps_avoided += spec.intervals;
      if (was_hit) *was_hit = true;
      cm.lookups.add(1);
      cm.hits.add(1);
      cm.sweep_steps_avoided.add(spec.intervals);
      return it->second;
    }
  }
  auto table = std::make_shared<const DesignTable>(build_design_table(spec));
  std::shared_ptr<const DesignTable> winner;
  bool inserted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto [it, fresh] = tables_.emplace(key, std::move(table));
    inserted = fresh;
    if (inserted) {
      ++stats_.misses;
      stats_.sweep_steps_computed += spec.intervals;
    } else {
      // Lost a race to another thread building the same spec: count as a
      // hit and use the winner's (identical) table.
      ++stats_.hits;
      stats_.sweep_steps_avoided += spec.intervals;
    }
    winner = it->second;
  }
  cm.lookups.add(1);
  if (inserted) {
    cm.misses.add(1);
    cm.sweep_steps_computed.add(spec.intervals);
  } else {
    cm.hits.add(1);
    cm.sweep_steps_avoided.add(spec.intervals);
  }
  if (was_hit) *was_hit = !inserted;
  return winner;
}

DesignCacheStats DesignCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DesignCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

void DesignCache::clear() {
  std::size_t dropped;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dropped = tables_.size();
    tables_.clear();
    stats_ = DesignCacheStats{};
  }
  CacheMetrics::get().evictions.add(dropped);
}

void DesignCache::record(const DesignCacheStats& delta) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ += delta;
  }
  CacheMetrics::get().add(delta);
}

// design_contracts_batch lives in fleet_soa.cpp: it is reimplemented on
// the FleetSoA grouping and shares its table-acquisition and stats
// accounting with design_fleet.

}  // namespace ccd::contract
