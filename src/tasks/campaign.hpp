// Labeling-campaign orchestration: the full dynamic-contract loop applied
// to binary classification tasks (paper §VII's proposed generalization).
//
// Phases:
//  1. calibration — a flat participation payment while workers' effort
//     varies naturally; the requester records (effort, batch-agreement)
//     samples and per-labeler behaviour statistics;
//  2. fitting — quadratic effort functions per labeler type from the
//     calibration samples (the Table III machinery, unchanged);
//  3. design — per-labeler contracts on agreement counts via the standard
//     candidate-contract algorithm, with weights from a labeling analog of
//     Eq. 5 (inverse estimated error rate minus an adversary penalty);
//  4. evaluation — workers best-respond, label fresh batches, and the
//     aggregated label quality + requester utility are compared against the
//     flat-pay baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "contract/designer.hpp"
#include "effort/fitting.hpp"
#include "tasks/labeling.hpp"

namespace ccd::tasks {

struct CampaignConfig {
  std::size_t tasks_per_round = 60;
  std::size_t calibration_rounds = 10;
  std::size_t contract_rounds = 20;
  /// Flat pay during calibration (and the fixed baseline's payment).
  double flat_pay = 2.0;
  /// Effort the fixed baseline demands for its flat pay.
  double flat_min_effort = 0.8;
  /// Requester model.
  double value_per_correct_label = 0.4;
  double mu = 1.0;
  double rho = 1.0;
  double kappa = 0.1;
  /// Assumed influence motive for suspected adversaries.
  double omega_adversarial = 0.5;
  /// Detector: bias level (fraction of one class) treated as suspicious.
  double suspicion_bias = 0.75;
  /// Contract partition density.
  std::size_t intervals = 16;
  /// Weight floor analog of Eq. 5's accuracy floor (error-rate floor).
  double error_floor = 0.08;
  double weight_cap = 6.0;
  double difficulty_lo = 0.6;
  double difficulty_hi = 1.0;
  std::uint64_t seed = 17;

  void validate() const;
};

struct LabelerOutcome {
  LabelerSpec spec;
  /// Requester-side estimates after calibration.
  double estimated_error_rate = 0.0;
  double estimated_bias = 0.5;  ///< fraction of labels on the majority class
  bool suspected_adversarial = false;
  double weight = 0.0;
  /// Fitted effort->agreement curve used for this labeler's contract.
  effort::EffortFit fit;
  contract::DesignResult design;
  /// Contract-phase averages.
  double mean_effort = 0.0;
  double mean_pay = 0.0;
  double mean_correct_rate = 0.0;
};

struct CampaignResult {
  std::vector<LabelerOutcome> labelers;
  /// Contract-phase aggregate label quality.
  double accuracy_majority = 0.0;
  double accuracy_weighted = 0.0;
  /// Fixed-pay baseline on identical tasks.
  double baseline_accuracy_majority = 0.0;
  /// Requester utilities (value of correct aggregated labels minus pay).
  double requester_utility = 0.0;
  double baseline_requester_utility = 0.0;
};

/// Run the four phases end to end.
CampaignResult run_campaign(const std::vector<LabelerSpec>& labelers,
                            const CampaignConfig& config);

}  // namespace ccd::tasks
