// Binary-labeling task model — the paper's §VII extension from review tasks
// to general crowdsourcing (e.g. classification).
//
// The mapping onto the contract machinery:
//
//   review model                      labeling model
//   -----------------------------     ------------------------------------
//   effort level y                    effort level y (time/diligence)
//   feedback q = psi(y) (upvotes)     agreement count with the plurality
//                                     label over a batch — observable to
//                                     the requester, concave increasing
//                                     in effort (accuracy saturates)
//   honest / malicious workers        diligent / adversarial / spammer
//   omega * q (influence motive)      omega * (labels matching the
//                                     adversary's target class)
//
// Per-labeler accuracy follows a saturating curve
//   accuracy(y) = 0.5 + (cap - 0.5) * (1 - exp(-rate * y))
// (guessing at zero effort, skill asymptote `cap`), scaled down by task
// difficulty. Agreement counts over a batch then form (effort, feedback)
// samples that the standard quadratic psi-fitting consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ccd::tasks {

using TaskId = std::uint32_t;

struct LabelingTask {
  TaskId id = 0;
  bool true_label = false;
  /// In (0, 1]: multiplies the worker's above-chance accuracy margin.
  double difficulty = 1.0;
};

/// Saturating effort -> accuracy curve.
struct AccuracyModel {
  double cap = 0.95;   ///< asymptotic accuracy (in (0.5, 1])
  double rate = 1.2;   ///< how fast effort buys accuracy (> 0)

  /// Probability of labeling a task of the given difficulty correctly.
  double accuracy(double effort, double difficulty = 1.0) const;

  void validate() const;
};

enum class LabelerType {
  kDiligent,     ///< honest: labels what it believes
  kAdversarial,  ///< pushes its target class regardless of truth
  kSpammer,      ///< answers at chance regardless of effort
};

const char* to_string(LabelerType type);

struct LabelerSpec {
  std::string name = "labeler";
  LabelerType type = LabelerType::kDiligent;
  AccuracyModel accuracy{};
  /// Effort cost weight (> 0).
  double beta = 1.0;
  /// Adversarial influence weight: utility gained per label matching the
  /// target class (0 for diligent/spammer).
  double omega = 0.0;
  /// The class an adversarial labeler pushes.
  bool target_label = true;

  void validate() const;
};

/// One labeler's pass over a batch.
struct BatchOutcome {
  std::size_t correct = 0;       ///< labels equal to ground truth
  std::size_t agreement = 0;     ///< labels equal to the batch plurality
  std::size_t target_hits = 0;   ///< labels equal to the labeler's target
  std::vector<bool> labels;      ///< the emitted labels, task order
};

/// Emit labels for `batch` at the given effort. Diligent workers label
/// truth with accuracy(y); adversarial workers emit their target label with
/// probability rising in effort (effort buys *influence*: convincing
/// plausibility on easy tasks); spammers flip coins.
BatchOutcome label_batch(const LabelerSpec& labeler, double effort,
                         const std::vector<LabelingTask>& batch,
                         const std::vector<bool>& plurality,
                         util::Rng& rng);

/// Majority vote over per-labeler label vectors (ties -> `tie_break`).
std::vector<bool> majority_vote(const std::vector<std::vector<bool>>& votes,
                                bool tie_break = false);

/// Weighted vote: per-labeler weights (negative weights flip the vote,
/// zero ignores it).
std::vector<bool> weighted_vote(const std::vector<std::vector<bool>>& votes,
                                const std::vector<double>& weights,
                                bool tie_break = false);

/// Fraction of aggregated labels equal to ground truth.
double aggregate_accuracy(const std::vector<bool>& aggregated,
                          const std::vector<LabelingTask>& batch);

}  // namespace ccd::tasks
