#include "tasks/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "contract/baselines.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::tasks {
namespace {

std::vector<LabelingTask> make_batch(std::size_t count, double difficulty_lo,
                                     double difficulty_hi, util::Rng& rng) {
  std::vector<LabelingTask> batch(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch[i].id = static_cast<TaskId>(i);
    batch[i].true_label = rng.bernoulli(0.5);
    batch[i].difficulty = rng.uniform(difficulty_lo, difficulty_hi);
  }
  return batch;
}

}  // namespace

void CampaignConfig::validate() const {
  CCD_CHECK_MSG(tasks_per_round >= 1, "need at least one task per round");
  CCD_CHECK_MSG(calibration_rounds >= 3,
                "need >= 3 calibration rounds to fit effort curves");
  CCD_CHECK_MSG(contract_rounds >= 1, "need at least one contract round");
  CCD_CHECK_MSG(flat_pay >= 0.0, "flat pay must be non-negative");
  CCD_CHECK_MSG(value_per_correct_label > 0.0,
                "label value must be positive");
  CCD_CHECK_MSG(mu > 0.0, "mu must be positive");
  CCD_CHECK_MSG(intervals >= 1, "intervals must be >= 1");
  CCD_CHECK_MSG(error_floor > 0.0, "error floor must be positive");
  CCD_CHECK_MSG(difficulty_lo > 0.0 && difficulty_hi <= 1.0 &&
                    difficulty_lo <= difficulty_hi,
                "difficulty range must be inside (0, 1]");
}

CampaignResult run_campaign(const std::vector<LabelerSpec>& labelers,
                            const CampaignConfig& config) {
  config.validate();
  CCD_CHECK_MSG(!labelers.empty(), "campaign needs at least one labeler");
  for (const LabelerSpec& labeler : labelers) labeler.validate();
  util::Rng rng(config.seed);

  CampaignResult result;
  result.labelers.resize(labelers.size());
  for (std::size_t i = 0; i < labelers.size(); ++i) {
    result.labelers[i].spec = labelers[i];
  }

  // ---- Phase 1: calibration under flat pay -------------------------------
  // Effort varies naturally across workers and rounds; the requester logs
  // (effort-proxy, agreement) pairs and per-labeler label statistics.
  std::vector<std::vector<data::EffortSample>> samples(labelers.size());
  std::vector<std::size_t> labels_total(labelers.size(), 0);
  std::vector<std::size_t> labels_agree(labelers.size(), 0);
  std::vector<std::size_t> labels_true_class(labelers.size(), 0);

  for (std::size_t round = 0; round < config.calibration_rounds; ++round) {
    const auto batch = make_batch(config.tasks_per_round,
                                  config.difficulty_lo, config.difficulty_hi,
                                  rng);
    std::vector<double> efforts(labelers.size());
    std::vector<std::vector<bool>> votes(labelers.size());
    for (std::size_t i = 0; i < labelers.size(); ++i) {
      efforts[i] = rng.uniform(0.05, 2.5);
      votes[i] =
          label_batch(labelers[i], efforts[i], batch, {}, rng).labels;
    }
    const std::vector<bool> plurality = majority_vote(votes);
    for (std::size_t i = 0; i < labelers.size(); ++i) {
      std::size_t agree = 0;
      std::size_t ones = 0;
      for (std::size_t t = 0; t < batch.size(); ++t) {
        if (votes[i][t] == plurality[t]) ++agree;
        if (votes[i][t]) ++ones;
      }
      data::EffortSample sample;
      sample.worker = static_cast<data::WorkerId>(i);
      sample.effort = efforts[i];
      sample.feedback = static_cast<double>(agree);
      samples[i].push_back(sample);
      labels_total[i] += batch.size();
      labels_agree[i] += agree;
      labels_true_class[i] += std::max(ones, batch.size() - ones);
    }
  }

  // ---- Phase 2 & 3: estimates, fits, per-labeler contract design ---------
  for (std::size_t i = 0; i < labelers.size(); ++i) {
    LabelerOutcome& out = result.labelers[i];
    const double n = static_cast<double>(labels_total[i]);
    out.estimated_error_rate =
        1.0 - static_cast<double>(labels_agree[i]) / n;
    out.estimated_bias = static_cast<double>(labels_true_class[i]) / n;
    out.suspected_adversarial = out.estimated_bias >= config.suspicion_bias;

    // Labeling analog of Eq. 5: value accurate labelers, penalize suspects.
    const double error =
        std::max(config.error_floor, out.estimated_error_rate);
    out.weight = std::min(
        config.weight_cap,
        config.value_per_correct_label *
            (config.rho / error -
             config.kappa * (out.suspected_adversarial ? 1.0 : 0.0)));

    out.fit = effort::fit_effort_function(samples[i]);

    contract::SubproblemSpec spec;
    spec.psi = out.fit.model;
    spec.incentives.beta = labelers[i].beta;
    spec.incentives.omega =
        out.suspected_adversarial ? config.omega_adversarial : 0.0;
    spec.weight = out.weight;
    spec.mu = config.mu;
    spec.intervals = config.intervals;
    out.design = contract::design_contract(spec);
  }

  // ---- Phase 4: contract rounds vs the flat-pay baseline -----------------
  // Workers best-respond once (their environment is stationary) and keep
  // that effort; the baseline pays flat_pay for clearing flat_min_effort.
  std::vector<double> contract_efforts(labelers.size());
  std::vector<double> baseline_efforts(labelers.size());
  for (std::size_t i = 0; i < labelers.size(); ++i) {
    const LabelerOutcome& out = result.labelers[i];
    // True incentives drive behaviour (omega > 0 for real adversaries),
    // whatever the requester assumed at design time.
    const contract::WorkerIncentives truth{labelers[i].beta,
                                           labelers[i].omega};
    contract_efforts[i] =
        contract::best_response(out.design.contract, out.fit.model, truth)
            .effort;
    contract::SubproblemSpec fixed_spec;
    fixed_spec.psi = out.fit.model;
    fixed_spec.incentives = truth;
    fixed_spec.weight = std::max(1e-6, out.weight);
    fixed_spec.mu = config.mu;
    fixed_spec.intervals = config.intervals;
    baseline_efforts[i] =
        contract::fixed_threshold_baseline(fixed_spec, config.flat_pay,
                                           config.flat_min_effort)
            .effort;
  }

  double value_contract = 0.0;
  double value_baseline = 0.0;
  double pay_contract = 0.0;
  double pay_baseline = 0.0;
  util::Rng eval_rng = rng.split();
  std::vector<double> last_agreement(labelers.size(), 0.0);

  for (std::size_t round = 0; round < config.contract_rounds; ++round) {
    const auto batch = make_batch(config.tasks_per_round,
                                  config.difficulty_lo, config.difficulty_hi,
                                  eval_rng);
    // Contract arm.
    std::vector<std::vector<bool>> votes(labelers.size());
    for (std::size_t i = 0; i < labelers.size(); ++i) {
      const BatchOutcome outcome = label_batch(
          labelers[i], contract_efforts[i], batch, {}, eval_rng);
      votes[i] = outcome.labels;
    }
    const std::vector<bool> plurality = majority_vote(votes);
    std::vector<double> weights(labelers.size());
    for (std::size_t i = 0; i < labelers.size(); ++i) {
      LabelerOutcome& out = result.labelers[i];
      std::size_t agree = 0;
      std::size_t correct = 0;
      for (std::size_t t = 0; t < batch.size(); ++t) {
        if (votes[i][t] == plurality[t]) ++agree;
        if (votes[i][t] == batch[t].true_label) ++correct;
      }
      // Pay on *last* round's agreement (Eq. 1's one-round lag).
      const double pay = out.design.contract.pay(last_agreement[i]);
      last_agreement[i] = static_cast<double>(agree);
      pay_contract += pay;
      out.mean_pay += pay;
      out.mean_effort += contract_efforts[i];
      out.mean_correct_rate +=
          static_cast<double>(correct) / static_cast<double>(batch.size());
      weights[i] = out.weight;
    }
    result.accuracy_majority += aggregate_accuracy(plurality, batch);
    result.accuracy_weighted +=
        aggregate_accuracy(weighted_vote(votes, weights), batch);
    value_contract += aggregate_accuracy(plurality, batch) *
                      static_cast<double>(batch.size()) *
                      config.value_per_correct_label;

    // Baseline arm on the same tasks.
    std::vector<std::vector<bool>> baseline_votes(labelers.size());
    for (std::size_t i = 0; i < labelers.size(); ++i) {
      baseline_votes[i] =
          label_batch(labelers[i], baseline_efforts[i], batch, {}, eval_rng)
              .labels;
      if (baseline_efforts[i] >= config.flat_min_effort) {
        pay_baseline += config.flat_pay;
      }
    }
    const std::vector<bool> baseline_plurality =
        majority_vote(baseline_votes);
    result.baseline_accuracy_majority +=
        aggregate_accuracy(baseline_plurality, batch);
    value_baseline += aggregate_accuracy(baseline_plurality, batch) *
                      static_cast<double>(batch.size()) *
                      config.value_per_correct_label;
  }

  const double rounds = static_cast<double>(config.contract_rounds);
  result.accuracy_majority /= rounds;
  result.accuracy_weighted /= rounds;
  result.baseline_accuracy_majority /= rounds;
  for (LabelerOutcome& out : result.labelers) {
    out.mean_pay /= rounds;
    out.mean_effort /= rounds;
    out.mean_correct_rate /= rounds;
  }
  result.requester_utility = value_contract - config.mu * pay_contract;
  result.baseline_requester_utility =
      value_baseline - config.mu * pay_baseline;
  return result;
}

}  // namespace ccd::tasks
