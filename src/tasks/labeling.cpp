#include "tasks/labeling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ccd::tasks {

double AccuracyModel::accuracy(double effort, double difficulty) const {
  CCD_CHECK_MSG(effort >= 0.0, "effort must be non-negative");
  CCD_CHECK_MSG(difficulty > 0.0 && difficulty <= 1.0,
                "difficulty must be in (0, 1]");
  const double margin = (cap - 0.5) * (1.0 - std::exp(-rate * effort));
  return 0.5 + margin * difficulty;
}

void AccuracyModel::validate() const {
  CCD_CHECK_MSG(cap > 0.5 && cap <= 1.0, "accuracy cap must be in (0.5, 1]");
  CCD_CHECK_MSG(rate > 0.0, "accuracy rate must be positive");
}

const char* to_string(LabelerType type) {
  switch (type) {
    case LabelerType::kDiligent: return "diligent";
    case LabelerType::kAdversarial: return "adversarial";
    case LabelerType::kSpammer: return "spammer";
  }
  return "?";
}

void LabelerSpec::validate() const {
  accuracy.validate();
  CCD_CHECK_MSG(beta > 0.0, "labeler beta must be positive");
  CCD_CHECK_MSG(omega >= 0.0, "labeler omega must be non-negative");
}

BatchOutcome label_batch(const LabelerSpec& labeler, double effort,
                         const std::vector<LabelingTask>& batch,
                         const std::vector<bool>& plurality,
                         util::Rng& rng) {
  labeler.validate();
  CCD_CHECK_MSG(plurality.empty() || plurality.size() == batch.size(),
                "plurality vector size mismatch");
  BatchOutcome outcome;
  outcome.labels.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const LabelingTask& task = batch[i];
    bool label;
    switch (labeler.type) {
      case LabelerType::kDiligent: {
        const bool correct = rng.bernoulli(
            labeler.accuracy.accuracy(effort, task.difficulty));
        label = correct ? task.true_label : !task.true_label;
        break;
      }
      case LabelerType::kAdversarial: {
        // Effort buys influence: the adversary lands its target label with
        // its accuracy curve (plausible-looking wrong answers take work);
        // residual probability behaves like a lazy diligent worker.
        const bool lands_target = rng.bernoulli(
            labeler.accuracy.accuracy(effort, task.difficulty));
        label = lands_target ? labeler.target_label
                             : rng.bernoulli(0.5);
        break;
      }
      case LabelerType::kSpammer:
      default:
        label = rng.bernoulli(0.5);
        break;
    }
    outcome.labels.push_back(label);
    if (label == task.true_label) ++outcome.correct;
    if (!plurality.empty() && label == plurality[i]) ++outcome.agreement;
    if (label == labeler.target_label) ++outcome.target_hits;
  }
  return outcome;
}

std::vector<bool> majority_vote(const std::vector<std::vector<bool>>& votes,
                                bool tie_break) {
  CCD_CHECK_MSG(!votes.empty(), "majority_vote needs at least one voter");
  const std::size_t n = votes.front().size();
  for (const auto& v : votes) {
    CCD_CHECK_MSG(v.size() == n, "vote vectors must have equal length");
  }
  std::vector<bool> out(n, tie_break);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t ones = 0;
    for (const auto& v : votes) {
      if (v[i]) ++ones;
    }
    const std::size_t zeros = votes.size() - ones;
    if (ones > zeros) out[i] = true;
    else if (zeros > ones) out[i] = false;
    else out[i] = tie_break;
  }
  return out;
}

std::vector<bool> weighted_vote(const std::vector<std::vector<bool>>& votes,
                                const std::vector<double>& weights,
                                bool tie_break) {
  CCD_CHECK_MSG(!votes.empty(), "weighted_vote needs at least one voter");
  CCD_CHECK_MSG(votes.size() == weights.size(),
                "one weight per voter required");
  const std::size_t n = votes.front().size();
  for (const auto& v : votes) {
    CCD_CHECK_MSG(v.size() == n, "vote vectors must have equal length");
  }
  std::vector<bool> out(n, tie_break);
  for (std::size_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (std::size_t w = 0; w < votes.size(); ++w) {
      score += votes[w][i] ? weights[w] : -weights[w];
    }
    if (score > 0.0) out[i] = true;
    else if (score < 0.0) out[i] = false;
    else out[i] = tie_break;
  }
  return out;
}

double aggregate_accuracy(const std::vector<bool>& aggregated,
                          const std::vector<LabelingTask>& batch) {
  CCD_CHECK_MSG(aggregated.size() == batch.size(),
                "aggregated labels / batch size mismatch");
  if (batch.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (aggregated[i] == batch[i].true_label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch.size());
}

}  // namespace ccd::tasks
