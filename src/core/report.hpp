// Experiment reporting helpers: per-class summaries of pipeline outcomes
// and table renderers shared by the bench binaries and examples.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/stats.hpp"

namespace ccd::core {

struct ClassSummaryRow {
  std::string label;
  util::Summary summary;
};

/// Compensation / effort / feedback distributions by ground-truth class
/// (honest, NCM, CM) — the Fig. 7 / Fig. 8(b) views.
std::vector<ClassSummaryRow> compensation_by_class(const PipelineResult& r);
std::vector<ClassSummaryRow> effort_by_class(const PipelineResult& r);
std::vector<ClassSummaryRow> feedback_by_class(const PipelineResult& r);

/// Render rows as an aligned table (columns: label, count, mean, p5, median,
/// p95, max).
std::string render_class_table(const std::vector<ClassSummaryRow>& rows,
                               const std::string& value_name);

/// One-paragraph textual digest of a pipeline run.
std::string describe_pipeline_result(const PipelineResult& r);

}  // namespace ccd::core
