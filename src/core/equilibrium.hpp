// Equilibrium auditing: independent numerical verification that a designed
// contract actually implements the Stackelberg equilibrium it claims.
//
// The designer's guarantees rest on closed-form best responses; this module
// re-checks them by brute force on a dense effort grid, so a deployment can
// certify any contract — including ones built or edited outside the
// designer — before posting it:
//
//  * incentive compatibility: no effort level beats the claimed best
//    response by more than a tolerance (worker regret ~ 0);
//  * individual rationality: the claimed response weakly beats opting out;
//  * fleet audit: the same checks across every subproblem of a pipeline
//    run, aggregated.
#pragma once

#include <cstddef>

#include "contract/worker_response.hpp"
#include "core/pipeline.hpp"

namespace ccd::core {

struct IncentiveAudit {
  /// max_y U(y) - U(y*) over the audit grid (>= 0 up to grid error).
  double worker_regret = 0.0;
  /// The grid effort achieving the max (the profitable deviation, if any).
  double best_alternative_effort = 0.0;
  /// U(y*) - U(0): how much the worker prefers participating.
  double participation_margin = 0.0;
  bool incentive_compatible = false;
  bool individually_rational = false;
};

/// Audit a claimed best response against a dense grid over [0, psi peak].
IncentiveAudit audit_incentives(const contract::Contract& contract,
                                const effort::QuadraticEffort& psi,
                                const contract::WorkerIncentives& incentives,
                                const contract::BestResponse& claimed,
                                std::size_t grid_points = 4001,
                                double tolerance = 1e-6);

struct FleetAudit {
  std::size_t subproblems = 0;
  std::size_t audited = 0;            ///< non-excluded subproblems checked
  std::size_t ic_violations = 0;
  std::size_t ir_violations = 0;
  double max_worker_regret = 0.0;
  double min_participation_margin = 0.0;
  bool clean() const { return ic_violations == 0 && ir_violations == 0; }
};

/// Audit every designed contract in a pipeline result.
FleetAudit audit_pipeline(const PipelineResult& result,
                          std::size_t grid_points = 2001,
                          double tolerance = 1e-6);

}  // namespace ccd::core
