#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace ccd::core {
namespace {

/// Mean |score - expert consensus| for a worker; a worker with no reviews
/// brings no usable feedback (infinite distance => excluded).
double accuracy_distance(const data::ReviewTrace& trace,
                         const detect::ExpertPanel& experts,
                         data::WorkerId id) {
  const auto& review_ids = trace.reviews_of_worker(id);
  if (review_ids.empty()) return 1e9;
  double acc = 0.0;
  for (const data::ReviewId rid : review_ids) {
    const data::Review& r = trace.review(rid);
    acc += std::abs(r.score - experts.consensus(r.product));
  }
  return acc / static_cast<double>(review_ids.size());
}

const effort::EffortFit& class_fit(const effort::ClassFits& fits,
                                   DetectedClass cls) {
  switch (cls) {
    case DetectedClass::kHonest: return fits.honest;
    case DetectedClass::kNonCollusiveMalicious: return fits.ncm;
    case DetectedClass::kCollusiveMalicious: return fits.cm;
  }
  return fits.honest;
}

}  // namespace

std::vector<double> PipelineResult::compensations_of_class(
    data::WorkerClass cls) const {
  std::vector<double> out;
  for (const WorkerOutcome& w : workers) {
    if (w.true_class == cls) out.push_back(w.compensation);
  }
  return out;
}

PipelineResult run_pipeline(const data::ReviewTrace& trace,
                            const PipelineConfig& config) {
  config.requester.validate();
  CCD_CHECK_MSG(trace.indexes_built(), "pipeline requires trace indexes");

  PipelineResult result;
  const std::size_t n = trace.workers().size();
  result.workers.resize(n);

  // ---- Detection stage ------------------------------------------------
  const data::WorkerMetrics metrics(trace);
  const detect::ExpertPanel experts(trace, metrics, config.expert);
  const detect::MaliciousDetector detector(trace, experts, config.detector);
  result.detector_quality =
      detector.evaluate(trace, config.malicious_threshold);

  std::vector<data::WorkerId> malicious;
  if (config.use_ground_truth_labels) {
    for (const data::Worker& w : trace.workers()) {
      if (w.true_class != data::WorkerClass::kHonest) malicious.push_back(w.id);
    }
  } else {
    malicious = detector.flagged(config.malicious_threshold);
  }
  result.collusion = detect::cluster_collusive_workers(trace, malicious);

  // ---- Fitting stage ----------------------------------------------------
  result.class_fits = effort::fit_all_classes(metrics, config.fit);

  // ---- Per-worker attributes ---------------------------------------------
  // NCM = flagged malicious that clustering did not absorb into a
  // community; derive it from the flagged set itself so the detector and
  // the clustering stay one source of truth.
  std::vector<bool> is_ncm(n, false);
  for (const data::WorkerId id : malicious) {
    is_ncm[id] = result.collusion.community_of[id] < 0;
  }

  for (data::WorkerId id = 0; id < n; ++id) {
    WorkerOutcome& out = result.workers[id];
    out.id = id;
    out.true_class = trace.worker(id).true_class;
    out.malicious_probability = detector.probability(id);
    out.accuracy_distance = accuracy_distance(trace, experts, id);
    const std::int32_t community = result.collusion.community_of[id];
    if (community >= 0) {
      out.detected_class = DetectedClass::kCollusiveMalicious;
      out.partners = result.collusion.communities[community].members.size() - 1;
    } else if (is_ncm[id]) {
      out.detected_class = DetectedClass::kNonCollusiveMalicious;
      out.partners = 0;
    } else {
      out.detected_class = DetectedClass::kHonest;
      out.partners = 0;
    }
    out.weight = feedback_weight(config.requester, out.accuracy_distance,
                                 out.malicious_probability, out.partners);
  }

  // ---- Subproblem construction (BiP decomposition, §IV-B) ---------------
  const auto make_spec = [&](const effort::EffortFit& fit, double omega,
                             double weight) {
    contract::SubproblemSpec spec;
    spec.psi = fit.model;
    spec.incentives.beta = config.requester.beta;
    spec.incentives.omega = omega;
    spec.weight = weight;
    spec.mu = config.requester.mu;
    spec.intervals = config.requester.intervals;
    return spec;
  };

  // Individuals: everyone not in a detected community.
  for (data::WorkerId id = 0; id < n; ++id) {
    if (result.collusion.community_of[id] >= 0) continue;
    WorkerOutcome& out = result.workers[id];
    const double omega =
        out.detected_class == DetectedClass::kHonest
            ? 0.0
            : config.requester.omega_malicious;
    SubproblemOutcome sub;
    sub.workers = {id};
    sub.spec = make_spec(class_fit(result.class_fits, out.detected_class),
                         omega, out.weight);
    result.subproblems.push_back(std::move(sub));
  }
  // Communities as meta-workers.
  for (std::size_t c = 0; c < result.collusion.communities.size(); ++c) {
    const detect::Community& community = result.collusion.communities[c];
    double weight = 0.0;
    for (const data::WorkerId id : community.members) {
      weight += result.workers[id].weight;
    }
    weight /= static_cast<double>(community.members.size());

    const std::vector<data::EffortSample> samples =
        effort::community_sum_samples(trace, metrics, community.members);
    effort::EffortFit fit = result.class_fits.cm;
    if (samples.size() >= config.min_community_fit_samples) {
      fit = effort::fit_effort_function(samples, config.fit);
    }
    SubproblemOutcome sub;
    sub.workers = community.members;
    sub.spec = make_spec(fit, config.requester.omega_malicious, weight);
    result.subproblems.push_back(std::move(sub));
  }

  // ---- Strategy-specific solve (batched, cache-aware) --------------------
  // All workers of one detected class share the same weight-independent
  // spec, so the contract strategies go through design_contracts_batch:
  // one k-sweep per distinct spec, then a cheap per-worker resolve. The
  // fan-out reuses the process-wide shared pool unless the caller pins an
  // explicit thread count.
  const std::size_t nsub = result.subproblems.size();
  util::ThreadPool* pool = &util::shared_pool();
  std::optional<util::ThreadPool> local_pool;
  if (config.threads != 0) {
    local_pool.emplace(config.threads);
    pool = &*local_pool;
  }

  switch (config.strategy) {
    case PricingStrategy::kDynamicContract:
    case PricingStrategy::kExcludeMalicious: {
      std::vector<contract::SubproblemSpec> specs(nsub);
      for (std::size_t i = 0; i < nsub; ++i) {
        const SubproblemOutcome& sub = result.subproblems[i];
        specs[i] = sub.spec;
        if (config.strategy == PricingStrategy::kExcludeMalicious) {
          const bool suspected_malicious =
              sub.workers.size() > 1 ||
              result.workers[sub.workers.front()].detected_class !=
                  DetectedClass::kHonest;
          if (suspected_malicious) specs[i].weight = 0.0;  // zero contract
        }
      }
      contract::BatchOptions batch;
      batch.pool = pool;
      std::vector<contract::DesignResult> designs =
          contract::design_contracts_batch(specs, batch, &result.design_cache);
      for (std::size_t i = 0; i < nsub; ++i) {
        result.subproblems[i].design = std::move(designs[i]);
      }
      break;
    }
    case PricingStrategy::kFixedPayment: {
      const double fixed_payment = config.fixed_payment;
      const double fixed_threshold = config.fixed_threshold_effort;
      pool->parallel_for(nsub, [&](std::size_t i) {
        SubproblemOutcome& sub = result.subproblems[i];
        const contract::FixedContractOutcome outcome =
            contract::fixed_threshold_baseline(sub.spec, fixed_payment,
                                               fixed_threshold);
        // Represent the outcome in DesignResult form for uniform reporting.
        sub.design = contract::DesignResult{};
        sub.design.response.effort = outcome.effort;
        sub.design.response.feedback = outcome.feedback;
        sub.design.response.compensation = outcome.compensation;
        sub.design.response.utility = outcome.worker_utility;
        sub.design.requester_utility = outcome.requester_utility;
      });
      break;
    }
  }

  // ---- Aggregation --------------------------------------------------------
  for (std::size_t i = 0; i < result.subproblems.size(); ++i) {
    const SubproblemOutcome& sub = result.subproblems[i];
    const double share = 1.0 / static_cast<double>(sub.workers.size());
    result.total_requester_utility += sub.design.requester_utility;
    result.total_compensation += sub.design.response.compensation;
    for (const data::WorkerId id : sub.workers) {
      WorkerOutcome& out = result.workers[id];
      out.subproblem = i;
      out.excluded = sub.design.excluded;
      out.requester_utility = sub.design.requester_utility * share;
      out.compensation = sub.design.response.compensation * share;
      out.effort = sub.design.response.effort * share;
      out.feedback = sub.design.response.feedback * share;
      if (out.excluded) ++result.excluded_workers;
    }
  }

  CCD_LOG_DEBUG << "pipeline: utility="
                << result.total_requester_utility
                << " compensation=" << result.total_compensation
                << " excluded=" << result.excluded_workers
                << " design-cache hits=" << result.design_cache.hits
                << "/" << result.design_cache.lookups;
  return result;
}

}  // namespace ccd::core
