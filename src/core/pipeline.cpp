#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace ccd::core {
namespace {

/// Registry histogram for one pipeline stage's latency (microseconds).
util::metrics::Histogram* stage_histogram(const char* stage) {
  return &util::metrics::registry().histogram(std::string("ccd.pipeline.") +
                                              stage + "_us");
}

/// Mean |score - expert consensus| for a worker; a worker with no reviews
/// brings no usable feedback (infinite distance => excluded).
double accuracy_distance(const data::ReviewTrace& trace,
                         const detect::ExpertPanel& experts,
                         data::WorkerId id) {
  const auto& review_ids = trace.reviews_of_worker(id);
  if (review_ids.empty()) return 1e9;
  double acc = 0.0;
  for (const data::ReviewId rid : review_ids) {
    const data::Review& r = trace.review(rid);
    acc += std::abs(r.score - experts.consensus(r.product));
  }
  return acc / static_cast<double>(review_ids.size());
}

const effort::EffortFit& class_fit(const effort::ClassFits& fits,
                                   DetectedClass cls) {
  switch (cls) {
    case DetectedClass::kHonest: return fits.honest;
    case DetectedClass::kNonCollusiveMalicious: return fits.ncm;
    case DetectedClass::kCollusiveMalicious: return fits.cm;
  }
  return fits.honest;
}

/// Fail-fast sanitize: reject non-finite fields outright, naming the
/// offender. Lenient modes route through data::sanitize_trace instead.
void check_trace_finite(const data::ReviewTrace& trace) {
  for (const data::Worker& w : trace.workers()) {
    if (!std::isfinite(w.skill)) {
      DataError e("non-finite skill for worker " + std::to_string(w.id));
      e.with_stage("sanitize").with_worker(w.id);
      throw e;
    }
  }
  for (const data::Product& p : trace.products()) {
    if (!std::isfinite(p.true_quality)) {
      DataError e("non-finite quality for product " + std::to_string(p.id));
      e.with_stage("sanitize");
      throw e;
    }
  }
  for (const data::Review& r : trace.reviews()) {
    if (!std::isfinite(r.score)) {
      DataError e("non-finite score in review " + std::to_string(r.id));
      e.with_stage("sanitize").with_worker(r.worker).with_round(r.round);
      throw e;
    }
  }
}

/// The all-zero design used for quarantined subproblems: no contract, no
/// payment, no utility. Distinct from the designer's own exclusion result
/// (`excluded` stays false; WorkerOutcome::quarantined marks the cause).
contract::DesignResult quarantined_design() { return contract::DesignResult{}; }

}  // namespace

const char* to_string(StageMode mode) {
  switch (mode) {
    case StageMode::kFailFast: return "fail-fast";
    case StageMode::kQuarantine: return "quarantine";
    case StageMode::kFallback: return "fallback";
  }
  return "?";
}

const char* to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kSanitize: return "sanitize";
    case PipelineStage::kDetect: return "detect";
    case PipelineStage::kCluster: return "cluster";
    case PipelineStage::kFit: return "fit";
    case PipelineStage::kSolve: return "solve";
  }
  return "?";
}

StageMode FaultPolicy::mode_for(PipelineStage stage) const {
  switch (stage) {
    case PipelineStage::kSanitize: return sanitize;
    case PipelineStage::kDetect: return detect;
    case PipelineStage::kCluster: return cluster;
    case PipelineStage::kFit: return fit;
    case PipelineStage::kSolve: return solve;
  }
  return StageMode::kFailFast;
}

std::string DegradationEvent::to_string() const {
  std::ostringstream os;
  os << ccd::core::to_string(stage) << '/' << ccd::core::to_string(action)
     << " [" << ccd::to_string(code) << "] " << detail;
  if (worker >= 0) os << " worker=" << worker;
  if (subproblem >= 0) os << " subproblem=" << subproblem;
  return os.str();
}

std::string HealthReport::to_string() const {
  if (!degraded() && !sanitized && !cancelled) return "health: clean";
  std::ostringstream os;
  os << "health: " << events.size() << " event(s), quarantined_workers="
     << quarantined_workers << " fallback_workers=" << fallback_workers
     << " fit_fallbacks=" << fit_fallbacks;
  if (cancelled) {
    os << "; cancelled (" << util::to_string(cancel_reason)
       << "), unsolved_subproblems=" << unsolved_subproblems;
  }
  if (sanitized) os << "; " << sanitize.to_string();
  for (const DegradationEvent& e : events) os << "\n  " << e.to_string();
  return os.str();
}

std::string StageTimings::to_string() const {
  const auto ms = [](double s) { return util::format_double(s * 1e3, 2); };
  std::ostringstream os;
  os << "timings (ms): sanitize=" << ms(sanitize_s)
     << " detect=" << ms(detect_s) << " cluster=" << ms(cluster_s)
     << " fit=" << ms(fit_s) << " solve=" << ms(solve_s)
     << " total=" << ms(total_s);
  if (solve_spans.count > 0) {
    os << "; solve spans (us): n=" << solve_spans.count
       << " p50=" << util::format_double(solve_spans.p50(), 1)
       << " p95=" << util::format_double(solve_spans.p95(), 1);
  }
  return os.str();
}

std::vector<double> PipelineResult::compensations_of_class(
    data::WorkerClass cls) const {
  std::vector<double> out;
  for (const WorkerOutcome& w : workers) {
    if (w.true_class == cls) out.push_back(w.compensation);
  }
  return out;
}

PipelineResult run_pipeline(const data::ReviewTrace& trace,
                            const PipelineConfig& config) {
  config.requester.validate();
  CCD_CHECK_MSG(trace.indexes_built(), "pipeline requires trace indexes");

  PipelineResult result;
  HealthReport& health = result.health;
  const FaultPolicy& policy = config.faults;

  // Cooperative cancellation: the first poll that latches the token
  // records one degradation event naming the boundary; every later stage
  // just observes health.cancelled and degrades the same way its own
  // catch path would, so the partial result stays well-formed.
  const util::CancellationToken* cancel = config.cancel;
  const auto poll_cancel = [&](PipelineStage stage) {
    if (health.cancelled) return true;
    if (cancel == nullptr || !cancel->poll()) return false;
    health.cancelled = true;
    health.cancel_reason = cancel->reason();
    DegradationEvent ev;
    ev.stage = stage;
    ev.action = StageMode::kQuarantine;
    ev.code = ErrorCode::kDeadline;
    ev.detail = std::string("run cancelled (") +
                util::to_string(health.cancel_reason) + ") before the " +
                to_string(stage) + " stage";
    health.events.push_back(std::move(ev));
    return true;
  };

  // Observability: per-stage RAII spans write this run's wall clock into
  // result.timings and the process-wide ccd.pipeline.* latency histograms
  // (stopped explicitly so the figures land before `result` is returned).
  util::metrics::registry().counter("ccd.pipeline.runs").add(1);
  util::metrics::ScopedTimer total_timer(stage_histogram("total"),
                                         &result.timings.total_s);

  // ---- Sanitize stage ----------------------------------------------------
  // Fail-fast scans for the one corruption class ReviewTrace::validate()
  // historically missed at build time (non-finite fields reach here when a
  // trace is assembled in memory rather than loaded); the lenient modes
  // rebuild the trace through the sanitizer and keep going.
  util::metrics::ScopedTimer sanitize_timer(stage_histogram("sanitize"),
                                            &result.timings.sanitize_s);
  const data::ReviewTrace* active = &trace;
  std::optional<data::SanitizedTrace> sanitized_storage;
  if (poll_cancel(PipelineStage::kSanitize)) {
    // Cancelled before any work: use the trace as-is; the solve stage
    // below quarantines everything, so nothing reads unsanitized fields.
  } else if (policy.sanitize == StageMode::kFailFast) {
    check_trace_finite(trace);
  } else {
    sanitized_storage = data::sanitize_trace(trace, config.sanitize);
    health.sanitize = sanitized_storage->report;
    health.sanitized = true;
    if (!health.sanitize.clean()) {
      DegradationEvent ev;
      ev.stage = PipelineStage::kSanitize;
      ev.action = policy.sanitize;
      ev.code = ErrorCode::kData;
      ev.detail = health.sanitize.to_string();
      health.events.push_back(std::move(ev));
    }
    active = &sanitized_storage->trace;
  }
  if (config.load_report) {
    // The trace came from a lenient load: fold the load-layer counters
    // into this run's health (the sanitize-stage counters, when that
    // stage ran, describe the same rows post-load, so only the counters
    // the loader alone can know are added) and flag any partial read.
    health.sanitize.unparseable_rows += config.load_report->unparseable_rows;
    health.sanitize.aborted_files += config.load_report->aborted_files;
    health.sanitize.rows_before_abort += config.load_report->rows_before_abort;
    if (!config.load_report->clean()) {
      DegradationEvent ev;
      ev.stage = PipelineStage::kSanitize;
      ev.action = StageMode::kFallback;
      ev.code = ErrorCode::kData;
      ev.detail = "lenient load: " + config.load_report->to_string();
      health.events.push_back(std::move(ev));
    }
  }
  sanitize_timer.stop();
  const data::ReviewTrace& t = *active;

  const std::size_t n = t.workers().size();
  result.workers.resize(n);

  // ---- Detection stage ---------------------------------------------------
  util::metrics::ScopedTimer detect_timer(stage_histogram("detect"),
                                          &result.timings.detect_s);
  std::optional<data::WorkerMetrics> metrics;
  std::optional<detect::ExpertPanel> experts;
  std::optional<detect::MaliciousDetector> detector;
  std::vector<data::WorkerId> malicious;
  try {
    if (poll_cancel(PipelineStage::kDetect)) {
      // Same degradation as an absorbed detect failure: fleet treated
      // honest; the single cancellation event is already recorded.
      result.detector_quality = {};
    } else {
      metrics.emplace(t);
      experts.emplace(t, *metrics, config.expert);
      detector.emplace(t, *experts, config.detector);
      result.detector_quality =
          detector->evaluate(t, config.malicious_threshold);
      if (!config.use_ground_truth_labels) {
        malicious = detector->flagged(config.malicious_threshold);
      }
    }
  } catch (Error& e) {
    if (policy.detect == StageMode::kFailFast) {
      e.with_stage("detect");
      throw;
    }
    // Degraded detection: treat the fleet as honest (no flags, neutral
    // probabilities). Contracts are still designed for everyone, so the
    // run stays useful as an upper bound on trust.
    DegradationEvent ev;
    ev.stage = PipelineStage::kDetect;
    ev.action = policy.detect;
    ev.code = e.code();
    ev.detail = e.message();
    health.events.push_back(std::move(ev));
    malicious.clear();
    result.detector_quality = {};
  }
  if (config.use_ground_truth_labels) {
    for (const data::Worker& w : t.workers()) {
      if (w.true_class != data::WorkerClass::kHonest) malicious.push_back(w.id);
    }
  }
  detect_timer.stop();

  // ---- Clustering stage --------------------------------------------------
  util::metrics::ScopedTimer cluster_timer(stage_histogram("cluster"),
                                           &result.timings.cluster_s);
  try {
    if (poll_cancel(PipelineStage::kCluster)) {
      result.collusion = {};
      result.collusion.community_of.assign(n, -1);
      result.collusion.non_collusive = malicious;
    } else {
      result.collusion = detect::cluster_collusive_workers(t, malicious);
    }
  } catch (Error& e) {
    if (policy.cluster == StageMode::kFailFast) {
      e.with_stage("cluster");
      throw;
    }
    DegradationEvent ev;
    ev.stage = PipelineStage::kCluster;
    ev.action = policy.cluster;
    ev.code = e.code();
    ev.detail = e.message();
    health.events.push_back(std::move(ev));
    // Degraded clustering: no communities; flagged workers stay NCM.
    result.collusion = {};
    result.collusion.community_of.assign(n, -1);
    result.collusion.non_collusive = malicious;
  }
  cluster_timer.stop();

  // ---- Fitting stage -----------------------------------------------------
  // The fit span covers the class fits here plus the per-community fits
  // below (they run inside subproblem construction).
  util::metrics::ScopedTimer fit_timer(stage_histogram("fit"),
                                       &result.timings.fit_s);
  if (poll_cancel(PipelineStage::kFit)) {
    // Cancelled fitting degrades like an absorbed fit failure: the
    // library default concave model for every class. (A fail-fast fit
    // policy must not abort here — cancellation is silent by contract.)
    effort::EffortFit def;
    def.model = effort::QuadraticEffort(-1.0, 8.0, 2.0);
    def.fallback = true;
    result.class_fits.honest = def;
    result.class_fits.ncm = def;
    result.class_fits.cm = def;
    ++health.fit_fallbacks;
  } else {
    try {
      CCD_CHECK_MSG(metrics.has_value(),
                    "worker metrics unavailable (detect stage failed)");
      result.class_fits = effort::fit_all_classes(*metrics, config.fit);
    } catch (Error& e) {
      if (policy.fit == StageMode::kFailFast) {
        e.with_stage("fit");
        throw;
      }
      DegradationEvent ev;
      ev.stage = PipelineStage::kFit;
      ev.action = policy.fit;
      ev.code = e.code();
      ev.detail = e.message();
      health.events.push_back(std::move(ev));
      // Degraded fitting: the library default concave model for every class.
      effort::EffortFit def;
      def.model = effort::QuadraticEffort(-1.0, 8.0, 2.0);
      def.fallback = true;
      result.class_fits.honest = def;
      result.class_fits.ncm = def;
      result.class_fits.cm = def;
      ++health.fit_fallbacks;
    }
  }

  // ---- Per-worker attributes ---------------------------------------------
  // NCM = flagged malicious that clustering did not absorb into a
  // community; derive it from the flagged set itself so the detector and
  // the clustering stay one source of truth.
  std::vector<bool> is_ncm(n, false);
  for (const data::WorkerId id : malicious) {
    is_ncm[id] = result.collusion.community_of[id] < 0;
  }

  for (data::WorkerId id = 0; id < n; ++id) {
    WorkerOutcome& out = result.workers[id];
    out.id = id;
    out.true_class = t.worker(id).true_class;
    out.malicious_probability = detector ? detector->probability(id) : 0.0;
    out.accuracy_distance =
        experts ? accuracy_distance(t, *experts, id) : 0.0;
    const std::int32_t community = result.collusion.community_of[id];
    if (community >= 0) {
      out.detected_class = DetectedClass::kCollusiveMalicious;
      out.partners = result.collusion.communities[community].members.size() - 1;
    } else if (is_ncm[id]) {
      out.detected_class = DetectedClass::kNonCollusiveMalicious;
      out.partners = 0;
    } else {
      out.detected_class = DetectedClass::kHonest;
      out.partners = 0;
    }
    out.weight = feedback_weight(config.requester, out.accuracy_distance,
                                 out.malicious_probability, out.partners);
  }

  // ---- Subproblem construction (BiP decomposition, §IV-B) ---------------
  const auto make_spec = [&](const effort::EffortFit& fit, double omega,
                             double weight) {
    contract::SubproblemSpec spec;
    spec.psi = fit.model;
    spec.incentives.beta = config.requester.beta;
    spec.incentives.omega = omega;
    spec.weight = weight;
    spec.mu = config.requester.mu;
    spec.intervals = config.requester.intervals;
    return spec;
  };

  // Individuals: everyone not in a detected community.
  for (data::WorkerId id = 0; id < n; ++id) {
    if (result.collusion.community_of[id] >= 0) continue;
    WorkerOutcome& out = result.workers[id];
    const double omega =
        out.detected_class == DetectedClass::kHonest
            ? 0.0
            : config.requester.omega_malicious;
    SubproblemOutcome sub;
    sub.workers = {id};
    sub.spec = make_spec(class_fit(result.class_fits, out.detected_class),
                         omega, out.weight);
    result.subproblems.push_back(std::move(sub));
  }
  // Communities as meta-workers.
  for (std::size_t c = 0; c < result.collusion.communities.size(); ++c) {
    const detect::Community& community = result.collusion.communities[c];
    double weight = 0.0;
    for (const data::WorkerId id : community.members) {
      weight += result.workers[id].weight;
    }
    weight /= static_cast<double>(community.members.size());

    SubproblemOutcome sub;
    sub.workers = community.members;
    effort::EffortFit fit = result.class_fits.cm;
    if (metrics && !health.cancelled) {
      const std::vector<data::EffortSample> samples =
          effort::community_sum_samples(t, *metrics, community.members);
      if (samples.size() >= config.min_community_fit_samples) {
        try {
          fit = effort::fit_effort_function(samples, config.fit);
        } catch (Error& e) {
          if (policy.fit == StageMode::kFailFast) {
            e.with_stage("fit").with_worker(community.members.front());
            throw;
          }
          DegradationEvent ev;
          ev.stage = PipelineStage::kFit;
          ev.action = policy.fit;
          ev.code = e.code();
          ev.detail = e.message();
          ev.worker = community.members.front();
          ev.subproblem =
              static_cast<std::int64_t>(result.subproblems.size());
          health.events.push_back(std::move(ev));
          if (policy.fit == StageMode::kQuarantine) {
            sub.quarantined = true;
          } else {
            ++health.fit_fallbacks;  // keep the CM class fit
          }
        }
      }
    }
    sub.spec = make_spec(fit, config.requester.omega_malicious, weight);
    result.subproblems.push_back(std::move(sub));
  }
  fit_timer.stop();

  // ---- Strategy-specific solve (batched, cache-aware) --------------------
  // All workers of one detected class share the same weight-independent
  // spec, so the contract strategies go through design_contracts_batch:
  // one k-sweep per distinct spec, then a cheap per-worker resolve. The
  // fan-out reuses the process-wide shared pool unless the caller pins an
  // explicit thread count.
  util::metrics::ScopedTimer solve_timer(stage_histogram("solve"),
                                         &result.timings.solve_s);
  // Per-community / per-distinct-spec solve spans for this run; snapshotted
  // into result.timings and rolled up into ccd.pipeline.solve_task_us.
  util::metrics::Histogram solve_spans;
  const std::size_t nsub = result.subproblems.size();
  util::ThreadPool* pool = &util::shared_pool();
  std::optional<util::ThreadPool> local_pool;
  if (config.threads != 0) {
    local_pool.emplace(config.threads);
    pool = &*local_pool;
  }

  const auto suspected_malicious = [&](const SubproblemOutcome& sub) {
    return sub.workers.size() > 1 ||
           result.workers[sub.workers.front()].detected_class !=
               DetectedClass::kHonest;
  };
  const auto fixed_design = [&](const contract::SubproblemSpec& spec) {
    const contract::FixedContractOutcome outcome =
        contract::fixed_threshold_baseline(spec, config.fixed_payment,
                                           config.fixed_threshold_effort);
    // Represent the outcome in DesignResult form for uniform reporting.
    contract::DesignResult design;
    design.response.effort = outcome.effort;
    design.response.feedback = outcome.feedback;
    design.response.compensation = outcome.compensation;
    design.response.utility = outcome.worker_utility;
    design.requester_utility = outcome.requester_utility;
    return design;
  };

  // Which subproblems the solve actually finished; cancellation leaves
  // zeros behind and the post-pass below quarantines them.
  std::vector<std::uint8_t> task_done(nsub, 0);
  if (poll_cancel(PipelineStage::kSolve)) {
    // Cancelled before (or at) the solve boundary: no design work runs;
    // every live subproblem is quarantined by the post-pass.
  } else if (policy.solve == StageMode::kFailFast) {
    try {
      switch (config.strategy) {
        case PricingStrategy::kDynamicContract:
        case PricingStrategy::kExcludeMalicious: {
          std::vector<contract::SubproblemSpec> specs(nsub);
          for (std::size_t i = 0; i < nsub; ++i) {
            const SubproblemOutcome& sub = result.subproblems[i];
            specs[i] = sub.spec;
            // Quarantined (fit stage) and strategy-excluded subproblems get
            // the zero-weight shortcut: no k-sweep, no fault point.
            if (sub.quarantined) specs[i].weight = 0.0;
            if (config.strategy == PricingStrategy::kExcludeMalicious &&
                suspected_malicious(sub)) {
              specs[i].weight = 0.0;  // zero contract
            }
          }
          contract::BatchOptions batch;
          batch.pool = pool;
          batch.sweep_histogram = &solve_spans;
          batch.cancel = cancel;
          batch.resolved = &task_done;
          batch.kernel = config.sweep_kernel;
          std::vector<contract::DesignResult> designs =
              contract::design_contracts_batch(specs, batch,
                                               &result.design_cache);
          for (std::size_t i = 0; i < nsub; ++i) {
            if (task_done[i]) {
              result.subproblems[i].design = std::move(designs[i]);
            }
          }
          break;
        }
        case PricingStrategy::kFixedPayment: {
          pool->parallel_for(nsub, [&](std::size_t i) {
            SubproblemOutcome& sub = result.subproblems[i];
            if (sub.quarantined) return;
            util::metrics::ScopedTimer span(&solve_spans);
            sub.design = fixed_design(sub.spec);
            task_done[i] = 1;
          }, cancel);
          break;
        }
      }
    } catch (Error& e) {
      e.with_stage("solve");
      throw;
    }
    for (std::size_t i = 0; i < nsub; ++i) {
      if (result.subproblems[i].quarantined) {
        result.subproblems[i].design = quarantined_design();
      }
    }
  } else {
    // Lenient solve: per-subproblem tasks with a shared table cache; each
    // task absorbs its own failure (quarantine or fixed-payment fallback)
    // instead of cancelling the fan-out.
    contract::DesignCache cache;
    std::mutex events_mutex;
    const StageMode solve_mode = policy.solve;
    pool->parallel_for(nsub, [&](std::size_t i) {
      SubproblemOutcome& sub = result.subproblems[i];
      if (sub.quarantined) {
        sub.design = quarantined_design();
        return;
      }
      contract::SubproblemSpec spec = sub.spec;
      if (config.strategy == PricingStrategy::kExcludeMalicious &&
          suspected_malicious(sub)) {
        spec.weight = 0.0;
      }
      try {
        util::metrics::ScopedTimer span(&solve_spans);
        CCD_FAULT_POINT("pipeline.solve_task", i, Error);
        sub.design = config.strategy == PricingStrategy::kFixedPayment
                         ? fixed_design(spec)
                         : cache.design(spec);
        task_done[i] = 1;
        return;
      } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(events_mutex);
        DegradationEvent ev;
        ev.stage = PipelineStage::kSolve;
        ev.action = solve_mode;
        ev.code = e.code();
        ev.detail = e.message();
        ev.worker = sub.workers.front();
        ev.subproblem = static_cast<std::int64_t>(i);
        health.events.push_back(std::move(ev));
      }
      if (solve_mode == StageMode::kFallback &&
          config.strategy != PricingStrategy::kFixedPayment) {
        try {
          sub.design = fixed_design(spec);
          sub.fallback = true;
          task_done[i] = 1;
          return;
        } catch (const Error& e) {
          std::lock_guard<std::mutex> lock(events_mutex);
          DegradationEvent ev;
          ev.stage = PipelineStage::kSolve;
          ev.action = StageMode::kQuarantine;
          ev.code = e.code();
          ev.detail = "fallback failed: " + e.message();
          ev.worker = sub.workers.front();
          ev.subproblem = static_cast<std::int64_t>(i);
          health.events.push_back(std::move(ev));
        }
      }
      sub.quarantined = true;
      sub.design = quarantined_design();
    }, cancel);
    result.design_cache = cache.stats();
  }

  // Cancellation post-pass: anything the solve stage did not finish gets
  // the quarantine treatment, so the reconciliation invariant holds and a
  // partial run is visibly partial. Runs once, whether the token latched
  // at an earlier boundary or mid-solve.
  if (health.cancelled || (cancel != nullptr && cancel->cancelled())) {
    std::size_t unsolved = 0;
    for (std::size_t i = 0; i < nsub; ++i) {
      SubproblemOutcome& sub = result.subproblems[i];
      if (task_done[i] != 0 || sub.quarantined) continue;
      sub.quarantined = true;
      sub.design = quarantined_design();
      ++unsolved;
    }
    health.unsolved_subproblems = unsolved;
    if (!health.cancelled) {
      // Latched mid-solve (between the boundary poll and the fan-out's
      // own checks): record the one summary event here.
      health.cancelled = true;
      health.cancel_reason = cancel->reason();
      DegradationEvent ev;
      ev.stage = PipelineStage::kSolve;
      ev.action = StageMode::kQuarantine;
      ev.code = ErrorCode::kDeadline;
      ev.detail = std::string("solve cancelled mid-stage (") +
                  util::to_string(health.cancel_reason) + "); " +
                  std::to_string(unsolved) +
                  " subproblem(s) quarantined unsolved";
      health.events.push_back(std::move(ev));
    }
    util::metrics::registry().counter("ccd.pipeline.cancelled").add(1);
  }
  solve_timer.stop();
  result.timings.solve_spans = solve_spans.snapshot();
  util::metrics::registry()
      .histogram("ccd.pipeline.solve_task_us")
      .merge(result.timings.solve_spans);

  // Parallel tasks record events in completion order; sort for stable,
  // reproducible reports.
  std::stable_sort(health.events.begin(), health.events.end(),
                   [](const DegradationEvent& a, const DegradationEvent& b) {
                     if (a.stage != b.stage) return a.stage < b.stage;
                     if (a.subproblem != b.subproblem) {
                       return a.subproblem < b.subproblem;
                     }
                     return a.worker < b.worker;
                   });

  // ---- Aggregation --------------------------------------------------------
  for (std::size_t i = 0; i < result.subproblems.size(); ++i) {
    const SubproblemOutcome& sub = result.subproblems[i];
    const double share = 1.0 / static_cast<double>(sub.workers.size());
    result.total_requester_utility += sub.design.requester_utility;
    result.total_compensation += sub.design.response.compensation;
    for (const data::WorkerId id : sub.workers) {
      WorkerOutcome& out = result.workers[id];
      out.subproblem = i;
      out.excluded = sub.design.excluded;
      out.quarantined = sub.quarantined;
      out.fallback = sub.fallback;
      out.requester_utility = sub.design.requester_utility * share;
      out.compensation = sub.design.response.compensation * share;
      out.effort = sub.design.response.effort * share;
      out.feedback = sub.design.response.feedback * share;
      if (out.excluded) ++result.excluded_workers;
      if (out.quarantined) ++health.quarantined_workers;
      if (out.fallback) ++health.fallback_workers;
    }
  }

  // Stopped explicitly: relying on the destructor would race NRVO (the
  // write could land after `result` is copied out on non-eliding paths).
  total_timer.stop();

  CCD_LOG_DEBUG << "pipeline: utility="
                << result.total_requester_utility
                << " compensation=" << result.total_compensation
                << " excluded=" << result.excluded_workers
                << " design-cache hits=" << result.design_cache.hits
                << "/" << result.design_cache.lookups;
  CCD_LOG_DEBUG << "pipeline: " << result.timings.to_string();
  if (health.degraded()) {
    CCD_LOG_INFO << "pipeline degraded: " << health.to_string();
  }
  return result;
}

}  // namespace ccd::core
