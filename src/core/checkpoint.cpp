#include "core/checkpoint.hpp"

#include <cstddef>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace ccd::core {
namespace {

constexpr const char* kTag = "SCKP";

// The byte stream is util::wire (little-endian; doubles as their exact bit
// patterns): the checkpoint contract is bitwise resume, which a text
// round-trip cannot guarantee.
using ByteWriter = util::wire::Writer;
using ByteReader = util::wire::Reader;

void check_version(std::uint32_t version) {
  if (version < SimCheckpoint::kMinReadVersion ||
      version > SimCheckpoint::kVersion) {
    throw DataError("unsupported checkpoint payload version " +
                    std::to_string(version));
  }
}

void write_config(ByteWriter& w, const SimConfig& config,
                  std::uint32_t version) {
  w.u64(config.rounds);
  w.f64(config.requester.rho);
  w.f64(config.requester.kappa);
  w.f64(config.requester.gamma);
  w.f64(config.requester.mu);
  w.f64(config.requester.beta);
  w.f64(config.requester.omega_malicious);
  w.u64(config.requester.intervals);
  w.f64(config.requester.accuracy_floor);
  w.f64(config.requester.weight_cap);
  w.f64(config.feedback_noise);
  w.f64(config.accuracy_noise);
  w.u64(config.redesign_every);
  w.f64(config.ema_alpha);
  w.f64(config.suspicion_threshold);
  w.u64(config.seed);
  w.u64(config.checkpoint_every);
  w.str(config.checkpoint_path);
  w.u64(config.threads);
  if (version >= 3) {
    w.u8(static_cast<std::uint8_t>(config.policy.kind));
    w.f64(config.policy.payment_cap);
    w.f64(config.policy.zoom_confidence);
    w.u64(config.policy.zoom_max_depth);
    w.u64(config.policy.price_levels);
    w.f64(config.policy.peer_tolerance);
  } else {
    // A v2 payload cannot carry a policy section; refuse to silently drop
    // a non-default backend.
    CCD_CHECK_MSG(config.policy.kind == policy::Kind::kBip,
                  "v2 checkpoints support only the bip policy backend");
  }
}

SimConfig read_config(ByteReader& r, std::uint32_t version) {
  SimConfig config;
  config.rounds = r.u64();
  config.requester.rho = r.f64();
  config.requester.kappa = r.f64();
  config.requester.gamma = r.f64();
  config.requester.mu = r.f64();
  config.requester.beta = r.f64();
  config.requester.omega_malicious = r.f64();
  config.requester.intervals = r.u64();
  config.requester.accuracy_floor = r.f64();
  config.requester.weight_cap = r.f64();
  config.feedback_noise = r.f64();
  config.accuracy_noise = r.f64();
  config.redesign_every = r.u64();
  config.ema_alpha = r.f64();
  config.suspicion_threshold = r.f64();
  config.seed = r.u64();
  config.checkpoint_every = r.u64();
  config.checkpoint_path = r.str();
  config.threads = r.u64();
  if (version >= 3) {
    config.policy.kind = static_cast<policy::Kind>(r.u8());
    config.policy.payment_cap = r.f64();
    config.policy.zoom_confidence = r.f64();
    config.policy.zoom_max_depth = r.u64();
    config.policy.price_levels = r.u64();
    config.policy.peer_tolerance = r.f64();
  }
  return config;
}

void write_worker(ByteWriter& w, const SimWorkerSpec& spec) {
  w.str(spec.name);
  w.f64(spec.psi.r2());
  w.f64(spec.psi.r1());
  w.f64(spec.psi.r0());
  w.f64(spec.beta);
  w.f64(spec.omega);
  w.f64(spec.accuracy_distance);
  w.u64(spec.partners);
  w.u8(spec.switch_round.has_value() ? 1 : 0);
  w.u64(spec.switch_round.value_or(0));
  w.f64(spec.switched_omega);
  w.f64(spec.switched_accuracy_distance);
  w.u8(spec.masking_period.has_value() ? 1 : 0);
  w.u64(spec.masking_period.value_or(0));
  w.f64(spec.masking_duty);
  w.u64(spec.arrive_round);
  w.u8(spec.depart_round.has_value() ? 1 : 0);
  w.u64(spec.depart_round.value_or(0));
}

SimWorkerSpec read_worker(ByteReader& r) {
  SimWorkerSpec spec;
  spec.name = r.str();
  const double r2 = r.f64();
  const double r1 = r.f64();
  const double r0 = r.f64();
  spec.psi = effort::QuadraticEffort(r2, r1, r0);
  spec.beta = r.f64();
  spec.omega = r.f64();
  spec.accuracy_distance = r.f64();
  spec.partners = r.u64();
  const bool has_switch = r.u8() != 0;
  const std::uint64_t switch_round = r.u64();
  if (has_switch) spec.switch_round = switch_round;
  spec.switched_omega = r.f64();
  spec.switched_accuracy_distance = r.f64();
  const bool has_masking = r.u8() != 0;
  const std::uint64_t masking_period = r.u64();
  if (has_masking) spec.masking_period = masking_period;
  spec.masking_duty = r.f64();
  spec.arrive_round = r.u64();
  const bool has_depart = r.u8() != 0;
  const std::uint64_t depart_round = r.u64();
  if (has_depart) spec.depart_round = depart_round;
  return spec;
}

void write_history(ByteWriter& w, const SimResult& history) {
  w.u64(history.rounds.size());
  for (const RoundRecord& record : history.rounds) {
    w.u64(record.round);
    w.f64(record.requester_utility);
    w.f64(record.total_compensation);
    w.f64(record.weighted_feedback);
  }
  w.u64(history.worker_history.size());
  for (const std::vector<WorkerRound>& series : history.worker_history) {
    w.u64(series.size());
    for (const WorkerRound& wr : series) {
      w.f64(wr.effort);
      w.f64(wr.feedback);
      w.f64(wr.compensation);
      w.f64(wr.worker_utility);
      w.f64(wr.estimated_malicious);
      w.f64(wr.weight);
    }
  }
  w.f64(history.cumulative_requester_utility);
}

SimResult read_history(ByteReader& r) {
  SimResult history;
  const std::size_t rounds = r.count(32);
  history.rounds.reserve(rounds);
  for (std::size_t t = 0; t < rounds; ++t) {
    RoundRecord record;
    record.round = r.u64();
    record.requester_utility = r.f64();
    record.total_compensation = r.f64();
    record.weighted_feedback = r.f64();
    history.rounds.push_back(record);
  }
  const std::size_t workers = r.count(8);
  history.worker_history.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::size_t series_length = r.count(48);
    std::vector<WorkerRound> series;
    series.reserve(series_length);
    for (std::size_t t = 0; t < series_length; ++t) {
      WorkerRound wr;
      wr.effort = r.f64();
      wr.feedback = r.f64();
      wr.compensation = r.f64();
      wr.worker_utility = r.f64();
      wr.estimated_malicious = r.f64();
      wr.weight = r.f64();
      series.push_back(wr);
    }
    history.worker_history.push_back(std::move(series));
  }
  history.cumulative_requester_utility = r.f64();
  return history;
}

}  // namespace

void encode_contract(util::wire::Writer& w,
                     const contract::Contract& contract) {
  if (contract.is_zero()) {
    w.u64(0);
    return;
  }
  const std::size_t knots = contract.intervals() + 1;
  w.u64(knots);
  w.f64(contract.delta());
  for (std::size_t l = 0; l < knots; ++l) w.f64(contract.knot(l));
  for (std::size_t l = 0; l < knots; ++l) w.f64(contract.payment(l));
}

contract::Contract decode_contract(util::wire::Reader& r) {
  const std::size_t knots = r.count(16);
  if (knots == 0) return contract::Contract{};
  const double delta = r.f64();
  std::vector<double> feedback_knots;
  std::vector<double> payments;
  feedback_knots.reserve(knots);
  payments.reserve(knots);
  for (std::size_t l = 0; l < knots; ++l) feedback_knots.push_back(r.f64());
  for (std::size_t l = 0; l < knots; ++l) payments.push_back(r.f64());
  return contract::Contract(delta, std::move(feedback_knots),
                            std::move(payments));
}

std::string encode_checkpoint(const SimCheckpoint& checkpoint,
                              std::uint32_t version) {
  check_version(version);
  ByteWriter w;
  write_config(w, checkpoint.config, version);
  w.u64(checkpoint.workers.size());
  for (const SimWorkerSpec& spec : checkpoint.workers) write_worker(w, spec);
  w.u64(checkpoint.next_round);
  for (const std::uint64_t word : checkpoint.rng.words) w.u64(word);
  w.u8(checkpoint.rng.has_cached_normal ? 1 : 0);
  w.f64(checkpoint.rng.cached_normal);
  w.f64_vec(checkpoint.est_accuracy);
  w.f64_vec(checkpoint.est_malicious);
  w.u64(checkpoint.contracts.size());
  for (const contract::Contract& c : checkpoint.contracts) {
    encode_contract(w, c);
  }
  w.f64_vec(checkpoint.last_feedback);
  write_history(w, checkpoint.history);
  if (version >= 3) {
    w.str(checkpoint.policy_state);
  } else {
    CCD_CHECK_MSG(checkpoint.policy_state.empty(),
                  "v2 checkpoints cannot carry learner state");
  }
  return w.take();
}

SimCheckpoint decode_checkpoint(const std::string& payload,
                                std::uint32_t version) {
  check_version(version);
  try {
    ByteReader r(payload);
    SimCheckpoint checkpoint;
    checkpoint.config = read_config(r, version);
    const std::size_t workers = r.count(64);
    checkpoint.workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      checkpoint.workers.push_back(read_worker(r));
    }
    checkpoint.next_round = r.u64();
    for (std::uint64_t& word : checkpoint.rng.words) word = r.u64();
    checkpoint.rng.has_cached_normal = r.u8() != 0;
    checkpoint.rng.cached_normal = r.f64();
    checkpoint.est_accuracy = r.f64_vec();
    checkpoint.est_malicious = r.f64_vec();
    const std::size_t contracts = r.count(8);
    checkpoint.contracts.reserve(contracts);
    for (std::size_t i = 0; i < contracts; ++i) {
      checkpoint.contracts.push_back(decode_contract(r));
    }
    checkpoint.last_feedback = r.f64_vec();
    checkpoint.history = read_history(r);
    if (version >= 3) checkpoint.policy_state = r.str();
    r.finish();

    const std::size_t n = checkpoint.workers.size();
    CCD_CHECK_MSG(n >= 1, "checkpoint has no workers");
    CCD_CHECK_MSG(checkpoint.est_accuracy.size() == n &&
                      checkpoint.est_malicious.size() == n &&
                      checkpoint.contracts.size() == n &&
                      checkpoint.last_feedback.size() == n &&
                      checkpoint.history.worker_history.size() == n,
                  "checkpoint per-worker state is inconsistent");
    CCD_CHECK_MSG(checkpoint.history.rounds.size() == checkpoint.next_round,
                  "checkpoint history does not match its round counter");
    checkpoint.config.validate();
    return checkpoint;
  } catch (const DataError&) {
    throw;
  } catch (const Error& e) {
    // Checksum-valid but semantically broken payloads (e.g. a contract
    // whose knots fail validation) are still data corruption to callers.
    throw DataError(std::string("invalid checkpoint payload: ") + e.what());
  }
}

void save_checkpoint(const std::string& path, const SimCheckpoint& checkpoint,
                     const util::RetryPolicy& retry) {
  const std::string payload = encode_checkpoint(checkpoint);
  util::with_retry("checkpoint_write", retry, [&](std::size_t attempt) {
    CCD_FAULT_POINT("io.checkpoint_write", attempt, DataError);
    util::write_framed_file(path, kTag, SimCheckpoint::kVersion, payload);
  });
}

SimCheckpoint load_checkpoint(const std::string& path,
                              const util::RetryPolicy& retry) {
  return util::with_retry("checkpoint_read", retry, [&](std::size_t attempt) {
    CCD_FAULT_POINT("io.checkpoint_read", attempt, DataError);
    const util::FramedPayload framed = util::read_framed_file(
        path, kTag, SimCheckpoint::kMinReadVersion, SimCheckpoint::kVersion);
    return decode_checkpoint(framed.payload, framed.version);
  });
}

}  // namespace ccd::core
