// End-to-end contract-design pipeline (the paper's Fig. 4 strategy
// framework):
//
//   trace -> expert panel -> maliciousness estimates -> collusion
//   clustering -> effort-function fitting -> BiP decomposition ->
//   per-subproblem contract design (in parallel) -> fleet outcome.
//
// The pipeline also runs the exclusion baseline of Fig. 8(c) (drop every
// suspected malicious worker) and a fleet-wide fixed-payment baseline, so
// experiments can compare strategies on identical inputs.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "contract/baselines.hpp"
#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "core/requester.hpp"
#include "data/metrics.hpp"
#include "data/trace.hpp"
#include "detect/collusion.hpp"
#include "detect/expert.hpp"
#include "detect/malicious.hpp"
#include "effort/fitting.hpp"

namespace ccd::core {

enum class PricingStrategy {
  kDynamicContract,   ///< the paper's method
  kExcludeMalicious,  ///< Fig. 8(c) baseline: drop all suspected malicious
  kFixedPayment,      ///< flat per-task payment with a quality threshold
};

struct PipelineConfig {
  RequesterConfig requester{};
  detect::ExpertConfig expert{};
  detect::MaliciousDetectorConfig detector{};
  effort::FitConfig fit{};
  PricingStrategy strategy = PricingStrategy::kDynamicContract;
  /// Detector probability above which a worker is treated as malicious.
  double malicious_threshold = 0.5;
  /// Use ground-truth labels instead of the detector (upper-bound analysis).
  bool use_ground_truth_labels = false;
  /// Minimum per-round samples before a community gets its own effort fit
  /// (falls back to the CM class fit otherwise).
  std::size_t min_community_fit_samples = 10;
  /// Fixed-payment baseline knobs (used when strategy == kFixedPayment).
  double fixed_payment = 1.0;
  double fixed_threshold_effort = 1.0;
  /// Worker threads for the subproblem fan-out. 0 reuses the process-wide
  /// util::shared_pool() (hardware concurrency); a positive value runs the
  /// solve stage on a dedicated pool of that size. Results are identical
  /// either way.
  std::size_t threads = 0;
};

/// How the requester classified a worker (from detector + clustering; may
/// disagree with ground truth).
enum class DetectedClass { kHonest, kNonCollusiveMalicious, kCollusiveMalicious };

struct WorkerOutcome {
  data::WorkerId id = 0;
  data::WorkerClass true_class = data::WorkerClass::kHonest;
  DetectedClass detected_class = DetectedClass::kHonest;
  double malicious_probability = 0.0;
  double accuracy_distance = 0.0;
  std::size_t partners = 0;  ///< A_i (detected community size - 1)
  double weight = 0.0;       ///< w_i (Eq. 5)
  bool excluded = false;
  /// Per-worker requester utility and compensation (community members carry
  /// an equal share of the community totals).
  double requester_utility = 0.0;
  double compensation = 0.0;
  double effort = 0.0;
  double feedback = 0.0;
  /// Index into PipelineResult::subproblems for this worker's contract.
  std::size_t subproblem = 0;
};

struct SubproblemOutcome {
  /// Workers covered (one entry for individuals; all members for a community).
  std::vector<data::WorkerId> workers;
  contract::SubproblemSpec spec;
  contract::DesignResult design;
};

struct PipelineResult {
  std::vector<WorkerOutcome> workers;        ///< indexed by worker id
  std::vector<SubproblemOutcome> subproblems;
  detect::CollusionResult collusion;
  effort::ClassFits class_fits;
  detect::MaliciousDetector::Quality detector_quality;
  /// Solve-stage cache counters: one k-sweep per distinct subproblem spec,
  /// hits for every worker resolved from a shared table (empty for the
  /// fixed-payment strategy, which designs no contracts).
  contract::DesignCacheStats design_cache;
  double total_requester_utility = 0.0;
  double total_compensation = 0.0;
  std::size_t excluded_workers = 0;

  /// Compensations of workers whose ground-truth class is `cls`.
  std::vector<double> compensations_of_class(data::WorkerClass cls) const;
};

/// Run the full pipeline over a trace.
PipelineResult run_pipeline(const data::ReviewTrace& trace,
                            const PipelineConfig& config);

}  // namespace ccd::core
