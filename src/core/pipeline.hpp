// End-to-end contract-design pipeline (the paper's Fig. 4 strategy
// framework):
//
//   trace -> sanitize -> expert panel -> maliciousness estimates ->
//   collusion clustering -> effort-function fitting -> BiP decomposition ->
//   per-subproblem contract design (in parallel) -> fleet outcome.
//
// The pipeline also runs the exclusion baseline of Fig. 8(c) (drop every
// suspected malicious worker) and a fleet-wide fixed-payment baseline, so
// experiments can compare strategies on identical inputs.
//
// Fault tolerance: every stage runs inside a recovery boundary governed by
// a per-stage StageMode in PipelineConfig::faults.
//
//  * kFailFast   — any error aborts the run (the historical behavior and
//                  the default); the thrown ccd::Error is annotated with
//                  the stage (and worker, where known) before it escapes.
//  * kQuarantine — the offending record / worker / subproblem is dropped
//                  with a zero contract (the §V "eliminated worker"
//                  treatment) and the run continues.
//  * kFallback   — a cheaper substitute is used instead: the sanitizer
//                  repairs the trace, a failed detector treats everyone as
//                  honest, a failed community fit reuses the CM class fit,
//                  and a failed contract design falls back to the
//                  fixed-payment baseline. If the substitute also fails,
//                  the unit is quarantined.
//
// Everything absorbed this way is recorded in PipelineResult::health —
// counters reconcile exactly: every worker ends up solved, excluded, or
// quarantined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "contract/baselines.hpp"
#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "core/requester.hpp"
#include "data/metrics.hpp"
#include "data/sanitize.hpp"
#include "data/trace.hpp"
#include "detect/collusion.hpp"
#include "detect/expert.hpp"
#include "detect/malicious.hpp"
#include "effort/fitting.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace ccd::core {

enum class PricingStrategy {
  kDynamicContract,   ///< the paper's method
  kExcludeMalicious,  ///< Fig. 8(c) baseline: drop all suspected malicious
  kFixedPayment,      ///< flat per-task payment with a quality threshold
};

/// Degradation mode for one pipeline stage.
enum class StageMode {
  kFailFast,    ///< propagate the error (historical behavior; default)
  kQuarantine,  ///< drop the offending unit with a zero contract
  kFallback,    ///< substitute a degraded result; quarantine if that fails
};

const char* to_string(StageMode mode);

/// Stages with a recovery boundary (in execution order).
enum class PipelineStage { kSanitize, kDetect, kCluster, kFit, kSolve };

const char* to_string(PipelineStage stage);

/// Per-stage degradation policy.
struct FaultPolicy {
  StageMode sanitize = StageMode::kFailFast;
  StageMode detect = StageMode::kFailFast;
  StageMode cluster = StageMode::kFailFast;
  StageMode fit = StageMode::kFailFast;
  StageMode solve = StageMode::kFailFast;

  StageMode mode_for(PipelineStage stage) const;

  /// All stages kFailFast (the default-constructed policy, spelled out).
  static FaultPolicy fail_fast() { return {}; }
  /// All stages kQuarantine.
  static FaultPolicy quarantine() { return uniform(StageMode::kQuarantine); }
  /// All stages kFallback.
  static FaultPolicy fallback() { return uniform(StageMode::kFallback); }
  static FaultPolicy uniform(StageMode mode) {
    FaultPolicy p;
    p.sanitize = p.detect = p.cluster = p.fit = p.solve = mode;
    return p;
  }
};

/// One absorbed failure: which stage, what the boundary did, and the error
/// it swallowed.
struct DegradationEvent {
  PipelineStage stage = PipelineStage::kSanitize;
  StageMode action = StageMode::kQuarantine;  ///< what the boundary did
  ErrorCode code = ErrorCode::kGeneric;
  std::string detail;             ///< the swallowed error's message
  std::int64_t worker = -1;       ///< offending worker id, when known
  std::int64_t subproblem = -1;   ///< offending subproblem index, when known

  std::string to_string() const;
};

/// Everything the recovery boundaries absorbed during a run. Counters
/// reconcile exactly with PipelineResult: quarantined_workers workers carry
/// WorkerOutcome::quarantined, fallback_workers carry ::fallback, and
/// quarantined + excluded + solved == total workers.
struct HealthReport {
  /// Sanitizer counters (meaningful when `sanitized` is true).
  data::SanitizeReport sanitize;
  bool sanitized = false;  ///< the sanitize stage rebuilt the trace

  std::vector<DegradationEvent> events;
  std::size_t quarantined_workers = 0;  ///< zero contract due to a failure
  std::size_t fallback_workers = 0;     ///< priced by the fallback baseline
  std::size_t fit_fallbacks = 0;        ///< effort fits replaced by a default

  /// Cancellation / deadline accounting. A cancelled run is still
  /// well-formed: skipped stages degrade exactly like their catch paths,
  /// unsolved subproblems are quarantined, and the reconciliation
  /// invariant (quarantined + excluded + solved == total) holds.
  bool cancelled = false;
  util::CancelReason cancel_reason = util::CancelReason::kNone;
  std::size_t unsolved_subproblems = 0;  ///< solve work skipped by cancellation

  /// True when any boundary absorbed a failure.
  bool degraded() const { return !events.empty(); }

  std::string to_string() const;
};

struct PipelineConfig {
  RequesterConfig requester{};
  detect::ExpertConfig expert{};
  detect::MaliciousDetectorConfig detector{};
  effort::FitConfig fit{};
  PricingStrategy strategy = PricingStrategy::kDynamicContract;
  /// Detector probability above which a worker is treated as malicious.
  double malicious_threshold = 0.5;
  /// Use ground-truth labels instead of the detector (upper-bound analysis).
  bool use_ground_truth_labels = false;
  /// Minimum per-round samples before a community gets its own effort fit
  /// (falls back to the CM class fit otherwise).
  std::size_t min_community_fit_samples = 10;
  /// Fixed-payment baseline knobs (used when strategy == kFixedPayment, and
  /// by the solve stage's kFallback boundary).
  double fixed_payment = 1.0;
  double fixed_threshold_effort = 1.0;
  /// Worker threads for the subproblem fan-out. 0 reuses the process-wide
  /// util::shared_pool() (hardware concurrency); a positive value runs the
  /// solve stage on a dedicated pool of that size. Results are identical
  /// either way.
  std::size_t threads = 0;
  /// Resolve kernel for the solve stage's batched design (see
  /// contract/ksweep.hpp). Defaults to the scalar reference path, which is
  /// bitwise-reproducible on every build; kSimd/kAuto select the
  /// vectorized per-class resolve (identical results on builds without
  /// floating-point contraction, last-ulp differences possible with it).
  /// Not part of SimConfig, so checkpoints are unaffected; a resumed run
  /// re-applies whatever kernel its PipelineConfig selects.
  contract::SweepKernel sweep_kernel = contract::SweepKernel::kScalar;
  /// Per-stage degradation policy (all kFailFast by default).
  FaultPolicy faults{};
  /// Sanitizer knobs for the sanitize stage's lenient modes.
  data::SanitizeConfig sanitize{};
  /// Cooperative cancellation / deadline for the whole run (null runs to
  /// completion). Polled at stage boundaries and inside the solve fan-out;
  /// a cancelled run returns a well-formed partial result with the
  /// cancellation recorded in HealthReport.
  const util::CancellationToken* cancel = nullptr;
  /// The loader's sanitize report, when the trace came from a lenient
  /// load (load_trace_sanitized). Its load-layer counters (unparseable
  /// rows, mid-file aborts) are folded into HealthReport::sanitize and a
  /// degradation event records any partial read, so incomplete input
  /// never looks like a complete run.
  std::optional<data::SanitizeReport> load_report;
};

/// How the requester classified a worker (from detector + clustering; may
/// disagree with ground truth).
enum class DetectedClass { kHonest, kNonCollusiveMalicious, kCollusiveMalicious };

struct WorkerOutcome {
  data::WorkerId id = 0;
  data::WorkerClass true_class = data::WorkerClass::kHonest;
  DetectedClass detected_class = DetectedClass::kHonest;
  double malicious_probability = 0.0;
  double accuracy_distance = 0.0;
  std::size_t partners = 0;  ///< A_i (detected community size - 1)
  double weight = 0.0;       ///< w_i (Eq. 5)
  bool excluded = false;
  /// Zero contract because a stage failed on this worker's subproblem
  /// (kQuarantine), not because the designer chose exclusion.
  bool quarantined = false;
  /// Priced by the fixed-payment fallback after the designer failed
  /// (kFallback).
  bool fallback = false;
  /// Per-worker requester utility and compensation (community members carry
  /// an equal share of the community totals).
  double requester_utility = 0.0;
  double compensation = 0.0;
  double effort = 0.0;
  double feedback = 0.0;
  /// Index into PipelineResult::subproblems for this worker's contract.
  std::size_t subproblem = 0;
};

struct SubproblemOutcome {
  /// Workers covered (one entry for individuals; all members for a community).
  std::vector<data::WorkerId> workers;
  contract::SubproblemSpec spec;
  contract::DesignResult design;
  bool quarantined = false;  ///< zero contract due to an absorbed failure
  bool fallback = false;     ///< design is the fixed-payment fallback
};

/// Wall-clock timings of one run. Stage seconds are measured whenever
/// metrics are compiled in (two clock reads per stage, independent of the
/// runtime enable flag); the solve-span histogram obeys the enable flag.
/// Everything is zero/empty under -DCCD_NO_METRICS. Every figure is also
/// rolled up into the process-wide `ccd.pipeline.*` registry metrics, so
/// p50/p95 across runs are exportable (util/metrics.hpp). Timing fields
/// never feed back into results: two runs on the same trace and config
/// are bitwise-identical in every other field regardless of timings
/// (tested in tests/integration/determinism_test.cpp).
struct StageTimings {
  double sanitize_s = 0.0;
  double detect_s = 0.0;
  double cluster_s = 0.0;
  double fit_s = 0.0;     ///< class fits + per-community fits
  double solve_s = 0.0;   ///< strategy solve over all subproblems
  double total_s = 0.0;   ///< whole run_pipeline call
  /// Per-community / per-distinct-spec solve spans in microseconds: one
  /// entry per k-sweep in the batched path, one per subproblem task in
  /// the lenient (quarantine/fallback) path.
  util::metrics::HistogramSnapshot solve_spans;

  std::string to_string() const;
};

struct PipelineResult {
  std::vector<WorkerOutcome> workers;        ///< indexed by worker id
  std::vector<SubproblemOutcome> subproblems;
  detect::CollusionResult collusion;
  effort::ClassFits class_fits;
  detect::MaliciousDetector::Quality detector_quality;
  /// Solve-stage cache counters: one k-sweep per distinct subproblem spec,
  /// hits for every worker resolved from a shared table (empty for the
  /// fixed-payment strategy, which designs no contracts).
  contract::DesignCacheStats design_cache;
  /// What the recovery boundaries absorbed (empty under a clean run).
  HealthReport health;
  /// Per-stage wall-clock timings of this run (see StageTimings).
  StageTimings timings;
  double total_requester_utility = 0.0;
  double total_compensation = 0.0;
  std::size_t excluded_workers = 0;

  /// Compensations of workers whose ground-truth class is `cls`.
  std::vector<double> compensations_of_class(data::WorkerClass cls) const;
};

/// Run the full pipeline over a trace.
PipelineResult run_pipeline(const data::ReviewTrace& trace,
                            const PipelineConfig& config);

}  // namespace ccd::core
