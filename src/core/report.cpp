#include "core/report.hpp"

#include <sstream>

#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccd::core {
namespace {

std::vector<ClassSummaryRow> by_class(
    const PipelineResult& r, double WorkerOutcome::*field) {
  const std::pair<data::WorkerClass, const char*> classes[] = {
      {data::WorkerClass::kHonest, "honest"},
      {data::WorkerClass::kNonCollusiveMalicious, "ncm"},
      {data::WorkerClass::kCollusiveMalicious, "cm"},
  };
  std::vector<ClassSummaryRow> rows;
  for (const auto& [cls, label] : classes) {
    std::vector<double> values;
    for (const WorkerOutcome& w : r.workers) {
      if (w.true_class == cls) values.push_back(w.*field);
    }
    rows.push_back({label, util::summarize(values)});
  }
  return rows;
}

}  // namespace

std::vector<ClassSummaryRow> compensation_by_class(const PipelineResult& r) {
  return by_class(r, &WorkerOutcome::compensation);
}

std::vector<ClassSummaryRow> effort_by_class(const PipelineResult& r) {
  return by_class(r, &WorkerOutcome::effort);
}

std::vector<ClassSummaryRow> feedback_by_class(const PipelineResult& r) {
  return by_class(r, &WorkerOutcome::feedback);
}

std::string render_class_table(const std::vector<ClassSummaryRow>& rows,
                               const std::string& value_name) {
  util::TextTable table({"class", "count", "mean " + value_name, "p5",
                         "median", "p95", "max"});
  for (const ClassSummaryRow& row : rows) {
    table.add_row({row.label, std::to_string(row.summary.count),
                   util::format_double(row.summary.mean, 4),
                   util::format_double(row.summary.p5, 4),
                   util::format_double(row.summary.median, 4),
                   util::format_double(row.summary.p95, 4),
                   util::format_double(row.summary.max, 4)});
  }
  return table.render();
}

std::string describe_pipeline_result(const PipelineResult& r) {
  std::ostringstream os;
  os << "requester utility " << util::format_double(r.total_requester_utility, 3)
     << ", total compensation "
     << util::format_double(r.total_compensation, 3) << ", "
     << r.subproblems.size() << " subproblems ("
     << r.collusion.communities.size() << " communities, "
     << r.collusion.non_collusive.size() << " NCM), " << r.excluded_workers
     << " excluded; detector precision "
     << util::format_double(r.detector_quality.precision(), 3) << " recall "
     << util::format_double(r.detector_quality.recall(), 3);
  return os.str();
}

}  // namespace ccd::core
