// Multi-round Stackelberg simulation (§III-B): the requester leads by
// posting per-worker contracts, workers follow with effort choices, and the
// compensation of round t is the contract applied to round t-1's realized
// feedback (Eq. 1).
//
// The simulator models what the one-shot pipeline cannot: adaptation. The
// requester only observes noisy per-round signals (realized feedback and a
// noisy score-deviation sample), keeps exponential-moving-average estimates
// of each worker's accuracy and maliciousness, and re-designs contracts on
// a schedule. Worker specs can switch behaviour mid-simulation (an honest
// worker turning malicious, or vice versa), which is the "adaptive to
// changes in workers' behavior" property the paper claims.
// Durability & deadlines: run(cancel) polls the token at round boundaries
// and returns a well-formed partial SimResult (cancelled flag + reason set)
// instead of throwing. With checkpoint_path configured the simulator
// serializes its complete dynamic state (RNG, estimates, contracts,
// feedback memory, accumulated history) every checkpoint_every rounds and
// on cancellation, via the crash-safe framed format in util/atomic_file; a
// simulator constructed from that SimCheckpoint continues the run
// bitwise-identically — the resumed result (restored prefix + continuation)
// equals the uninterrupted run's, at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "contract/design_cache.hpp"
#include "contract/designer.hpp"
#include "core/requester.hpp"
#include "effort/effort_model.hpp"
#include "policy/policy.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace ccd::util {
class ThreadPool;
}

namespace ccd::core {

struct SimCheckpoint;

struct SimWorkerSpec {
  std::string name = "worker";
  /// True effort function (the simulator's physics).
  effort::QuadraticEffort psi{-1.0, 8.0, 2.0};
  double beta = 1.0;
  /// True feedback-influence motive (0 = honest behaviour).
  double omega = 0.0;
  /// True mean |score - consensus| the worker produces.
  double accuracy_distance = 0.3;
  std::size_t partners = 0;
  /// Behaviour switch: from this round on, omega / accuracy change.
  std::optional<std::size_t> switch_round;
  double switched_omega = 0.0;
  double switched_accuracy_distance = 0.3;

  /// Masking adversary (paper §VII's "more sophisticated malicious
  /// workers"): the worker cycles with the given period, behaving honest
  /// for `masking_duty` of each cycle and malicious (the switched_* values)
  /// for the rest. Composes with switch_round: masking only starts once the
  /// switch (if any) has fired.
  std::optional<std::size_t> masking_period;
  double masking_duty = 0.5;

  /// Churn window: the worker participates only on rounds in
  /// [arrive_round, depart_round). Outside the window the requester
  /// assigns it weight 0 (→ zero contract at the next redesign), the
  /// worker produces no feedback and is paid nothing, its estimates
  /// freeze, and — critically for determinism — no RNG values are drawn
  /// for it.
  std::size_t arrive_round = 0;
  std::optional<std::size_t> depart_round;
  bool active_at(std::size_t round) const {
    return round >= arrive_round && (!depart_round || round < *depart_round);
  }

  /// Effective behaviour at round t under switch + masking rules.
  struct Behaviour {
    double omega = 0.0;
    double accuracy_distance = 0.3;
    bool malicious_now = false;
  };
  Behaviour behaviour_at(std::size_t round) const;
};

struct SimConfig {
  std::size_t rounds = 30;
  RequesterConfig requester{};
  /// Std-dev of the noise on realized feedback.
  double feedback_noise = 0.5;
  /// Std-dev of the noise on the requester's per-round accuracy sample.
  double accuracy_noise = 0.15;
  /// Contracts are re-designed every this many rounds (1 = every round).
  std::size_t redesign_every = 1;
  /// EMA rate for the requester's accuracy / maliciousness estimates.
  double ema_alpha = 0.3;
  /// Requester's assumed omega for workers it currently suspects.
  double suspicion_threshold = 0.5;
  std::uint64_t seed = 1;

  /// Contract designer backend (ccd::policy): the paper's BiP solver by
  /// default, or one of the online learners. Learner state is checkpointed
  /// (SCKP v3) and restored alongside the rest of the dynamic state, and
  /// backends draw only from the simulator's checkpointed RNG, so every
  /// backend keeps the bitwise resume contract.
  policy::PolicyConfig policy{};

  /// Write a crash-safe checkpoint to `checkpoint_path` after every this
  /// many completed rounds (0 disables periodic checkpoints). A cancelled
  /// run writes a final checkpoint at its round boundary whenever
  /// `checkpoint_path` is set, independent of this cadence.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;

  /// Threads for the per-round contract-redesign batch: 0 uses the shared
  /// pool, otherwise the simulator owns a pool of this size. Results are
  /// thread-count independent.
  std::size_t threads = 0;

  void validate() const;
};

/// Per-round callback hook — the extension point the adversarial scenario
/// engine (ccd::scenario) and baseline contract policies plug into. Every
/// method runs at a deterministic point inside step() and receives the
/// simulator's own (checkpointed) RNG, so hook draws are bitwise
/// resume-safe. The hook pointer itself is NOT part of a checkpoint: a
/// caller restoring a simulator must re-attach its hook before continuing,
/// and the hook must derive any internal state from the arguments it is
/// passed (e.g. the posted contracts), never from wall-clock history.
class RoundHook {
 public:
  virtual ~RoundHook() = default;

  /// Called every round right after the (possible) redesign; `redesigned`
  /// is true on rounds where the design batch ran. May mutate the posted
  /// contracts — baseline policies override them wholesale, adaptive
  /// adversaries inspect them to pick targets.
  virtual void on_contracts_posted(std::size_t round, bool redesigned,
                                   std::vector<contract::Contract>& contracts,
                                   const std::vector<double>& est_malicious,
                                   util::Rng& rng);

  /// Tamper with `worker`'s realized feedback for this round (called after
  /// the simulator's own noise, before the >= 0 clamp).
  virtual double adjust_feedback(std::size_t round, std::size_t worker,
                                 double feedback, util::Rng& rng);

  /// Tamper with the requester's accuracy sample for `worker` (called
  /// after the simulator's own noise, before the >= 0 clamp and the EMA
  /// update).
  virtual double adjust_accuracy_sample(std::size_t round, std::size_t worker,
                                        double sample, util::Rng& rng);
};

struct WorkerRound {
  double effort = 0.0;
  double feedback = 0.0;      ///< realized (noisy) feedback this round
  double compensation = 0.0;  ///< paid this round (from last round's feedback)
  double worker_utility = 0.0;
  double estimated_malicious = 0.0;  ///< requester's e^mal estimate
  double weight = 0.0;               ///< w_i used for this round's contract
};

struct RoundRecord {
  std::size_t round = 0;
  double requester_utility = 0.0;
  double total_compensation = 0.0;
  double weighted_feedback = 0.0;
};

struct SimResult {
  std::vector<RoundRecord> rounds;
  /// worker_history[w][t] — per-worker series.
  std::vector<std::vector<WorkerRound>> worker_history;
  double cumulative_requester_utility = 0.0;
  /// Set when run() stopped early at a round boundary; `rounds` then holds
  /// the completed prefix and the result is otherwise well-formed.
  bool cancelled = false;
  util::CancelReason cancel_reason = util::CancelReason::kNone;
};

/// Progress report of one step() call — the round-granular serving unit
/// (serve::Session drives a simulator one step per client request).
struct StepStatus {
  /// Rounds completed by this call (0 when the run was already finished
  /// or the token was cancelled before the first round).
  std::size_t completed_rounds = 0;
  /// Next round to run (== SimConfig::rounds once the run is complete).
  std::size_t next_round = 0;
  bool finished = false;
  bool cancelled = false;
  util::CancelReason cancel_reason = util::CancelReason::kNone;
  double cumulative_requester_utility = 0.0;
};

class StackelbergSimulator {
 public:
  StackelbergSimulator(std::vector<SimWorkerSpec> workers, SimConfig config);

  /// Restore a simulator mid-run from a checkpoint (see core/checkpoint.hpp).
  /// run() then continues from the checkpointed round and returns the FULL
  /// result — restored prefix plus continuation — bitwise-identical to an
  /// uninterrupted run of the same config.
  explicit StackelbergSimulator(const SimCheckpoint& checkpoint);

  // Out-of-line: ~unique_ptr<util::ThreadPool> needs the complete type.
  ~StackelbergSimulator();

  /// Simulate up to config.rounds, cooperatively honouring `cancel` (null
  /// runs to completion). Cancellation is polled once per round and between
  /// redesign sweeps; a cancelled run returns the completed prefix with
  /// SimResult::cancelled set and, when checkpoint_path is configured,
  /// writes a final checkpoint so the run can be resumed.
  SimResult run(const util::CancellationToken* cancel = nullptr);

  /// Advance at most `max_rounds` further rounds (bounded by the remaining
  /// config.rounds). The incremental unit under run() — N calls of step(1)
  /// leave the simulator in the state one run() of N rounds produces,
  /// bitwise; cancellation behaves as in run() but no final checkpoint is
  /// written (the caller owns the cadence via SimConfig::checkpoint_every,
  /// which still fires inside the loop).
  StepStatus step(std::size_t max_rounds,
                  const util::CancellationToken* cancel = nullptr);

  /// Complete dynamic state at the current round boundary — what
  /// core/checkpoint persists and what serve sessions snapshot.
  SimCheckpoint snapshot() const;

  std::size_t next_round() const { return next_round_; }
  bool finished() const { return next_round_ >= config_.rounds; }
  const SimConfig& config() const { return config_; }
  std::size_t worker_count() const { return workers_.size(); }
  /// Currently posted per-worker contracts (zero contracts before the
  /// first redesign round has run).
  const std::vector<contract::Contract>& contracts() const {
    return contracts_;
  }
  /// Accumulated result prefix (completed rounds only).
  const SimResult& history() const { return history_; }

  /// Attach (or detach, with nullptr) the per-round hook. Not owned, not
  /// checkpointed — re-attach after restoring from a checkpoint.
  void set_round_hook(RoundHook* hook) { hook_ = hook; }

 private:
  void init_fresh_state();
  void write_checkpoint() const;

  std::vector<SimWorkerSpec> workers_;
  SimConfig config_;

  // Dynamic state — everything a checkpoint must capture to make resume
  // bitwise-exact.
  std::size_t next_round_ = 0;
  util::Rng rng_;
  std::vector<double> est_accuracy_;
  std::vector<double> est_malicious_;
  std::vector<contract::Contract> contracts_;
  std::vector<double> last_feedback_;
  SimResult history_;
  /// The contract-designer backend. The object itself is rebuilt from
  /// config_.policy on construction; its *learner state* is dynamic state
  /// (snapshot()/SimCheckpoint::policy_state restores it verbatim).
  std::unique_ptr<policy::Policy> policy_;

  // Redesign machinery (not checkpointed: the cache is a pure memo and the
  // pool only schedules; neither affects results).
  contract::DesignCache design_cache_;
  std::unique_ptr<util::ThreadPool> own_pool_;
  RoundHook* hook_ = nullptr;
};

/// The standard mixed fleet used by ccdctl simulate, the serve subsystem,
/// and the cross-surface bitwise-identity tests: `malicious` biased
/// workers (omega 0.6, accuracy distance 1.7) followed by honest ones.
std::vector<SimWorkerSpec> preset_fleet(std::size_t workers,
                                        std::size_t malicious);

}  // namespace ccd::core
