#include "core/requester.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ccd::core {

void RequesterConfig::validate() const {
  CCD_CHECK_MSG(rho > 0.0, "rho must be positive");
  CCD_CHECK_MSG(kappa >= 0.0, "kappa must be non-negative");
  CCD_CHECK_MSG(gamma >= 0.0, "gamma must be non-negative");
  CCD_CHECK_MSG(mu > 0.0, "mu must be positive");
  CCD_CHECK_MSG(beta > 0.0, "beta must be positive");
  CCD_CHECK_MSG(omega_malicious >= 0.0, "omega_malicious must be >= 0");
  CCD_CHECK_MSG(intervals >= 1, "intervals must be >= 1");
  CCD_CHECK_MSG(accuracy_floor > 0.0, "accuracy_floor must be positive");
  CCD_CHECK_MSG(weight_cap > 0.0, "weight_cap must be positive");
}

double feedback_weight(const RequesterConfig& config, double accuracy_distance,
                       double malicious_probability, std::size_t partners) {
  CCD_CHECK_MSG(accuracy_distance >= 0.0,
                "accuracy distance must be non-negative");
  CCD_CHECK_MSG(malicious_probability >= 0.0 && malicious_probability <= 1.0,
                "malicious probability must be in [0,1]");
  const double distance = std::max(config.accuracy_floor, accuracy_distance);
  const double weight = config.rho / distance -
                        config.kappa * malicious_probability -
                        config.gamma * static_cast<double>(partners);
  return std::min(config.weight_cap, weight);
}

}  // namespace ccd::core
