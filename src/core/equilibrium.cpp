#include "core/equilibrium.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ccd::core {

IncentiveAudit audit_incentives(const contract::Contract& contract,
                                const effort::QuadraticEffort& psi,
                                const contract::WorkerIncentives& incentives,
                                const contract::BestResponse& claimed,
                                std::size_t grid_points, double tolerance) {
  CCD_CHECK_MSG(grid_points >= 2, "audit grid needs at least two points");
  CCD_CHECK_MSG(tolerance >= 0.0, "audit tolerance must be non-negative");

  const double limit = psi.y_peak();
  IncentiveAudit audit;
  audit.best_alternative_effort = claimed.effort;

  double best_alternative = -1e300;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double y =
        limit * static_cast<double>(i) / static_cast<double>(grid_points - 1);
    const double u = contract::worker_utility(contract, psi, incentives, y);
    if (u > best_alternative) {
      best_alternative = u;
      audit.best_alternative_effort = y;
    }
  }

  audit.worker_regret = std::max(0.0, best_alternative - claimed.utility);
  audit.participation_margin =
      claimed.utility -
      contract::worker_utility(contract, psi, incentives, 0.0);
  audit.incentive_compatible = audit.worker_regret <= tolerance;
  audit.individually_rational = audit.participation_margin >= -tolerance;
  return audit;
}

FleetAudit audit_pipeline(const PipelineResult& result,
                          std::size_t grid_points, double tolerance) {
  FleetAudit fleet;
  fleet.subproblems = result.subproblems.size();
  bool first = true;
  for (const SubproblemOutcome& sub : result.subproblems) {
    if (sub.design.excluded) continue;
    // The fixed-payment strategy leaves no piecewise contract to audit.
    if (sub.design.contract.is_zero() && sub.design.k_opt == 0) continue;
    ++fleet.audited;
    const IncentiveAudit audit = audit_incentives(
        sub.design.contract, sub.spec.psi, sub.spec.incentives,
        sub.design.response, grid_points, tolerance);
    if (!audit.incentive_compatible) ++fleet.ic_violations;
    if (!audit.individually_rational) ++fleet.ir_violations;
    fleet.max_worker_regret =
        std::max(fleet.max_worker_regret, audit.worker_regret);
    if (first || audit.participation_margin < fleet.min_participation_margin) {
      fleet.min_participation_margin = audit.participation_margin;
      first = false;
    }
  }
  return fleet;
}

}  // namespace ccd::core
