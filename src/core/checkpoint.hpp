// Crash-safe checkpoint/resume for the multi-round Stackelberg simulation.
//
// A SimCheckpoint captures the simulator's complete dynamic state at a
// round boundary: the configuration and worker fleet, the round to run
// next, the RNG state (xoshiro words plus the cached Box–Muller deviate),
// the requester's per-worker estimates, the posted contracts, the
// feedback memory that funds next round's compensation (Eq. 1), and the
// accumulated result prefix. Restoring it reproduces the remaining rounds
// bitwise-identically — doubles are serialized as their exact bit
// patterns, never through text round-trips.
//
// On disk a checkpoint is a framed file (util/atomic_file.hpp) with tag
// "SCKP", written via write-temp + fsync + rename so a crash mid-save
// leaves the previous complete checkpoint intact. Loading a corrupted,
// truncated, or torn file throws ccd::DataError — never UB, never a
// half-restored simulator. kVersion is bumped whenever the payload layout
// changes; readers reject versions they do not understand.
//
// save/load wrap their I/O in util::with_retry (metrics: `ccd.io.*`) and
// expose fault-injection sites "io.checkpoint_write" / "io.checkpoint_read"
// keyed by the attempt index, so chaos tests can fail the first attempts
// and assert the backoff path recovers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "core/stackelberg.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace ccd::core {

struct SimCheckpoint {
  /// Current payload layout version (frame tag "SCKP").
  /// v2: SimWorkerSpec churn window (arrive_round / depart_round).
  /// v3: policy backend config + opaque learner state (ccd::policy).
  /// Readers accept v2 files (they predate the policy seam and restore
  /// with the default BiP backend and empty learner state).
  static constexpr std::uint32_t kVersion = 3;
  static constexpr std::uint32_t kMinReadVersion = 2;

  SimConfig config;
  std::vector<SimWorkerSpec> workers;

  /// First round the resumed run executes (== completed rounds).
  std::size_t next_round = 0;
  util::RngState rng;
  std::vector<double> est_accuracy;
  std::vector<double> est_malicious;
  std::vector<contract::Contract> contracts;
  std::vector<double> last_feedback;
  /// Completed-rounds prefix (cancelled/cancel_reason are not persisted;
  /// a resumed run starts un-cancelled).
  SimResult history;
  /// Opaque learner state of the configured policy backend (empty for
  /// stateless backends, i.e. every v2 checkpoint). Produced by
  /// Policy::save_state() at a round boundary; restored verbatim.
  std::string policy_state;
};

/// Serialize / parse the checkpoint payload (the bytes inside the frame).
/// `version` selects the payload layout: kVersion (the default) or the
/// still-readable kMinReadVersion (encoding v2 drops the policy fields and
/// requires a default-BiP, stateless checkpoint — used by back-compat
/// tests). decode_checkpoint throws ccd::DataError on any malformed
/// payload or unsupported version.
std::string encode_checkpoint(const SimCheckpoint& checkpoint,
                              std::uint32_t version = SimCheckpoint::kVersion);
SimCheckpoint decode_checkpoint(const std::string& payload,
                                std::uint32_t version = SimCheckpoint::kVersion);

/// Contract codec shared by checkpoints and the serve wire protocol: a
/// zero contract is a bare 0 count; otherwise knot count, delta, knots,
/// payments — all doubles as exact bit patterns. decode_contract throws
/// ccd::DataError on malformed input (via the Reader / Contract
/// validation).
void encode_contract(util::wire::Writer& w, const contract::Contract& contract);
contract::Contract decode_contract(util::wire::Reader& r);

/// Durably write / read a checkpoint file, retrying transient I/O failures
/// under `retry`. Load failures (including corruption) surface as
/// ccd::DataError after the attempts are exhausted.
void save_checkpoint(const std::string& path, const SimCheckpoint& checkpoint,
                     const util::RetryPolicy& retry = {});
SimCheckpoint load_checkpoint(const std::string& path,
                              const util::RetryPolicy& retry = {});

}  // namespace ccd::core
