// Requester-side model: the feedback weight of Eq. 5 and its configuration.
//
//   w_i = rho / |l_i - l̄| - kappa * e_i^mal - gamma * A_i
//
// where |l_i - l̄| is the worker's mean absolute score deviation from expert
// consensus, e_i^mal the estimated maliciousness probability, and A_i the
// number of collusion partners. A floor on the deviation keeps the weight
// finite for perfectly accurate workers, and a cap bounds the requester's
// valuation of any single worker.
#pragma once

#include <cstddef>

namespace ccd::core {

struct RequesterConfig {
  /// Eq. 5 coefficients (paper defaults: kappa = gamma = 0.1).
  double rho = 1.0;
  double kappa = 0.1;
  double gamma = 0.1;
  /// Weight on total compensation in the requester's utility (Eq. 7).
  double mu = 1.0;
  /// Worker effort-cost weight beta (paper default 1).
  double beta = 1.0;
  /// Feedback-influence weight omega attributed to suspected malicious
  /// workers (the paper leaves omega unspecified; swept in ablations).
  double omega_malicious = 0.5;
  /// Number of effort intervals m in each designed contract.
  std::size_t intervals = 20;
  /// Floor on |l_i - l̄| (score stars) to keep 1/deviation finite.
  double accuracy_floor = 0.25;
  /// Cap on any single worker's feedback weight.
  double weight_cap = 4.0;

  void validate() const;
};

/// Eq. 5 with floor and cap applied. `accuracy_distance` is the mean
/// |l_i - l̄| in stars; `malicious_probability` in [0,1]; `partners` = A_i.
double feedback_weight(const RequesterConfig& config, double accuracy_distance,
                       double malicious_probability, std::size_t partners);

}  // namespace ccd::core
