#include "core/stackelberg.hpp"

#include <algorithm>
#include <cmath>

#include "contract/worker_response.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::core {

SimWorkerSpec::Behaviour SimWorkerSpec::behaviour_at(std::size_t round) const {
  // Two personas: the base (omega, accuracy_distance) and the switched
  // (switched_omega, switched_accuracy_distance). switch_round moves the
  // worker permanently to the switched persona; masking_period instead
  // alternates between the two, spending `masking_duty` of every cycle on
  // the base persona (the mask). Masking starts at switch_round if both
  // are set.
  Behaviour base{omega, accuracy_distance, false};
  Behaviour attack{switched_omega, switched_accuracy_distance, true};

  const std::size_t start = switch_round ? *switch_round : 0;
  if (round < start) return base;

  if (masking_period && *masking_period >= 1) {
    const std::size_t phase = (round - start) % *masking_period;
    const auto mask_rounds = static_cast<std::size_t>(
        masking_duty * static_cast<double>(*masking_period));
    return phase < mask_rounds ? base : attack;
  }
  return switch_round ? attack : base;
}

void SimConfig::validate() const {
  requester.validate();
  CCD_CHECK_MSG(rounds >= 1, "simulation needs at least one round");
  CCD_CHECK_MSG(feedback_noise >= 0.0, "feedback noise must be >= 0");
  CCD_CHECK_MSG(accuracy_noise >= 0.0, "accuracy noise must be >= 0");
  CCD_CHECK_MSG(redesign_every >= 1, "redesign_every must be >= 1");
  CCD_CHECK_MSG(ema_alpha > 0.0 && ema_alpha <= 1.0,
                "ema_alpha must be in (0, 1]");
}

StackelbergSimulator::StackelbergSimulator(std::vector<SimWorkerSpec> workers,
                                           SimConfig config)
    : workers_(std::move(workers)), config_(config) {
  config_.validate();
  CCD_CHECK_MSG(!workers_.empty(), "simulation needs at least one worker");
}

SimResult StackelbergSimulator::run() {
  util::Rng rng(config_.seed);
  const std::size_t n = workers_.size();

  // Requester-side state.
  std::vector<double> est_accuracy(n);
  std::vector<double> est_malicious(n, 0.05);
  std::vector<contract::Contract> contracts(n);
  std::vector<double> last_feedback(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Neutral starting estimates; round-0 feedback memory is zero effort.
    est_accuracy[i] = config_.requester.accuracy_floor;
    last_feedback[i] = workers_[i].psi(0.0);
  }

  SimResult result;
  result.worker_history.assign(n, {});

  for (std::size_t t = 0; t < config_.rounds; ++t) {
    // --- Requester: (re)design contracts from current estimates ---------
    if (t % config_.redesign_every == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double weight =
            feedback_weight(config_.requester, est_accuracy[i],
                            est_malicious[i], workers_[i].partners);
        contract::SubproblemSpec spec;
        spec.psi = workers_[i].psi;
        spec.incentives.beta = workers_[i].beta;
        spec.incentives.omega =
            est_malicious[i] >= config_.suspicion_threshold
                ? config_.requester.omega_malicious
                : 0.0;
        spec.weight = weight;
        spec.mu = config_.requester.mu;
        spec.intervals = config_.requester.intervals;
        contracts[i] = contract::design_contract(spec).contract;
      }
    }

    RoundRecord record;
    record.round = t;

    for (std::size_t i = 0; i < n; ++i) {
      SimWorkerSpec& w = workers_[i];
      // Behaviour switch / masking (the dynamics the contract must adapt to).
      const SimWorkerSpec::Behaviour behaviour = w.behaviour_at(t);
      const double omega = behaviour.omega;
      const double true_accuracy = behaviour.accuracy_distance;

      // --- Worker: best response to the posted contract ----------------
      const contract::WorkerIncentives inc{w.beta, omega};
      const contract::BestResponse br =
          contract::best_response(contracts[i], w.psi, inc);

      // Realized feedback is noisy around psi(y).
      const double feedback = std::max(
          0.0, br.feedback + rng.normal(0.0, config_.feedback_noise));

      // Compensation this round comes from *last* round's feedback (Eq. 1).
      const double compensation = contracts[i].pay(last_feedback[i]);
      last_feedback[i] = feedback;

      // --- Requester: update estimates from this round's observables ---
      const double accuracy_sample = std::max(
          0.0, true_accuracy + rng.normal(0.0, config_.accuracy_noise));
      est_accuracy[i] = (1.0 - config_.ema_alpha) * est_accuracy[i] +
                        config_.ema_alpha * accuracy_sample;
      // Maliciousness signal: biased workers produce large deviations.
      const double signal =
          1.0 / (1.0 + std::exp(-4.0 * (accuracy_sample - 0.9)));
      est_malicious[i] = (1.0 - config_.ema_alpha) * est_malicious[i] +
                         config_.ema_alpha * signal;

      const double weight =
          feedback_weight(config_.requester, est_accuracy[i],
                          est_malicious[i], w.partners);

      WorkerRound wr;
      wr.effort = br.effort;
      wr.feedback = feedback;
      wr.compensation = compensation;
      wr.worker_utility = compensation - w.beta * br.effort + omega * feedback;
      wr.estimated_malicious = est_malicious[i];
      wr.weight = weight;
      result.worker_history[i].push_back(wr);

      record.weighted_feedback += weight * feedback;
      record.total_compensation += compensation;
    }

    record.requester_utility =
        record.weighted_feedback -
        config_.requester.mu * record.total_compensation;
    result.cumulative_requester_utility += record.requester_utility;
    result.rounds.push_back(record);
  }
  return result;
}

}  // namespace ccd::core
