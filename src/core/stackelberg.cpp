#include "core/stackelberg.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "contract/worker_response.hpp"
#include "core/checkpoint.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ccd::core {

SimWorkerSpec::Behaviour SimWorkerSpec::behaviour_at(std::size_t round) const {
  // Two personas: the base (omega, accuracy_distance) and the switched
  // (switched_omega, switched_accuracy_distance). switch_round moves the
  // worker permanently to the switched persona; masking_period instead
  // alternates between the two, spending `masking_duty` of every cycle on
  // the base persona (the mask). Masking starts at switch_round if both
  // are set.
  Behaviour base{omega, accuracy_distance, false};
  Behaviour attack{switched_omega, switched_accuracy_distance, true};

  const std::size_t start = switch_round ? *switch_round : 0;
  if (round < start) return base;

  if (masking_period && *masking_period >= 1) {
    const std::size_t phase = (round - start) % *masking_period;
    const auto mask_rounds = static_cast<std::size_t>(
        masking_duty * static_cast<double>(*masking_period));
    return phase < mask_rounds ? base : attack;
  }
  return switch_round ? attack : base;
}

void RoundHook::on_contracts_posted(std::size_t /*round*/, bool /*redesigned*/,
                                    std::vector<contract::Contract>& /*contracts*/,
                                    const std::vector<double>& /*est_malicious*/,
                                    util::Rng& /*rng*/) {}

double RoundHook::adjust_feedback(std::size_t /*round*/, std::size_t /*worker*/,
                                  double feedback, util::Rng& /*rng*/) {
  return feedback;
}

double RoundHook::adjust_accuracy_sample(std::size_t /*round*/,
                                         std::size_t /*worker*/, double sample,
                                         util::Rng& /*rng*/) {
  return sample;
}

void SimConfig::validate() const {
  requester.validate();
  CCD_CHECK_MSG(rounds >= 1, "simulation needs at least one round");
  CCD_CHECK_MSG(feedback_noise >= 0.0, "feedback noise must be >= 0");
  CCD_CHECK_MSG(accuracy_noise >= 0.0, "accuracy noise must be >= 0");
  CCD_CHECK_MSG(redesign_every >= 1, "redesign_every must be >= 1");
  CCD_CHECK_MSG(ema_alpha > 0.0 && ema_alpha <= 1.0,
                "ema_alpha must be in (0, 1]");
  CCD_CHECK_MSG(checkpoint_every == 0 || !checkpoint_path.empty(),
                "checkpoint_every needs a checkpoint_path");
  policy.validate();
}

StackelbergSimulator::~StackelbergSimulator() = default;

StackelbergSimulator::StackelbergSimulator(std::vector<SimWorkerSpec> workers,
                                           SimConfig config)
    : workers_(std::move(workers)), config_(std::move(config)) {
  config_.validate();
  CCD_CHECK_MSG(!workers_.empty(), "simulation needs at least one worker");
  if (config_.threads > 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
  policy_ = policy::make_policy(config_.policy);
  init_fresh_state();
}

StackelbergSimulator::StackelbergSimulator(const SimCheckpoint& checkpoint)
    : workers_(checkpoint.workers), config_(checkpoint.config) {
  config_.validate();
  CCD_CHECK_MSG(!workers_.empty(), "simulation needs at least one worker");
  if (config_.threads > 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
  policy_ = policy::make_policy(config_.policy);
  policy_->load_state(checkpoint.policy_state);
  // decode_checkpoint already verified cross-field consistency; restore the
  // dynamic state verbatim so the continuation is bitwise-exact.
  next_round_ = checkpoint.next_round;
  rng_.set_state(checkpoint.rng);
  est_accuracy_ = checkpoint.est_accuracy;
  est_malicious_ = checkpoint.est_malicious;
  contracts_ = checkpoint.contracts;
  last_feedback_ = checkpoint.last_feedback;
  history_ = checkpoint.history;
  history_.cancelled = false;
  history_.cancel_reason = util::CancelReason::kNone;
  CCD_CHECK_MSG(next_round_ <= config_.rounds,
                "checkpoint is beyond the configured rounds");
}

void StackelbergSimulator::init_fresh_state() {
  const std::size_t n = workers_.size();
  rng_ = util::Rng(config_.seed);
  next_round_ = 0;
  est_accuracy_.assign(n, config_.requester.accuracy_floor);
  est_malicious_.assign(n, 0.05);
  contracts_.assign(n, contract::Contract{});
  last_feedback_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Neutral starting estimates; round-0 feedback memory is zero effort.
    last_feedback_[i] = workers_[i].psi(0.0);
  }
  history_ = SimResult{};
  history_.worker_history.assign(n, {});
}

SimCheckpoint StackelbergSimulator::snapshot() const {
  SimCheckpoint checkpoint;
  checkpoint.config = config_;
  checkpoint.workers = workers_;
  checkpoint.next_round = next_round_;
  checkpoint.rng = rng_.state();
  checkpoint.est_accuracy = est_accuracy_;
  checkpoint.est_malicious = est_malicious_;
  checkpoint.contracts = contracts_;
  checkpoint.last_feedback = last_feedback_;
  checkpoint.history = history_;
  checkpoint.history.cancelled = false;
  checkpoint.history.cancel_reason = util::CancelReason::kNone;
  checkpoint.policy_state = policy_->save_state();
  return checkpoint;
}

void StackelbergSimulator::write_checkpoint() const {
  save_checkpoint(config_.checkpoint_path, snapshot());
}

SimResult StackelbergSimulator::run(const util::CancellationToken* cancel) {
  const StepStatus status = step(config_.rounds, cancel);

  if (status.cancelled && !config_.checkpoint_path.empty()) {
    // Final checkpoint at the cancellation boundary, so ccdctl resume=FILE
    // can pick the run back up from exactly here.
    write_checkpoint();
  }

  SimResult result = history_;
  result.cancelled = status.cancelled;
  result.cancel_reason = status.cancel_reason;
  return result;
}

StepStatus StackelbergSimulator::step(std::size_t max_rounds,
                                      const util::CancellationToken* cancel) {
  const std::size_t n = workers_.size();
  util::ThreadPool& pool = own_pool_ ? *own_pool_ : util::shared_pool();
  const std::size_t remaining = config_.rounds - next_round_;
  const std::size_t stop_round =
      next_round_ + std::min(max_rounds, remaining);
  const std::size_t first_round = next_round_;

  bool cancelled = false;
  for (std::size_t t = next_round_; t < stop_round; ++t) {
    if (cancel != nullptr && cancel->poll()) {
      cancelled = true;
      break;
    }

    // --- Requester: the policy backend posts this round's contracts -----
    // BiP re-solves the bilevel program on redesign rounds only (one
    // cached k-sweep per distinct spec, scalar kernel: checkpointed runs
    // replay redesign rounds and must reproduce contracts bitwise across
    // machines and builds). Learning backends post fresh arms every round.
    const bool redesign_round = t % config_.redesign_every == 0;
    const bool learning = policy_->learns();
    std::vector<policy::WorkerView> views;
    if (redesign_round || learning) {
      views.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        policy::WorkerView& view = views[i];
        view.psi = workers_[i].psi;
        view.beta = workers_[i].beta;
        view.omega = est_malicious_[i] >= config_.suspicion_threshold
                         ? config_.requester.omega_malicious
                         : 0.0;
        view.active = workers_[i].active_at(t);
        // Churned-out workers get weight 0, which BiP resolves to the zero
        // contract through the cheap §V elimination path.
        view.weight = view.active
                          ? feedback_weight(config_.requester,
                                            est_accuracy_[i],
                                            est_malicious_[i],
                                            workers_[i].partners)
                          : 0.0;
        view.mu = config_.requester.mu;
        view.intervals = config_.requester.intervals;
      }
      policy::PostEnv env;
      env.pool = &pool;
      env.cache = &design_cache_;
      env.cancel = cancel;
      if (!policy_->post(t, redesign_round, views, contracts_, rng_, env)) {
        // The design batch was cut short: drop the round entirely
        // (contracts may be partially refreshed, but a resumed run
        // re-enters this same round and rebuilds them from the
        // checkpointed estimates, so the continuation stays bitwise-exact).
        cancelled = true;
        break;
      }
    }

    if (hook_ != nullptr) {
      hook_->on_contracts_posted(t, redesign_round, contracts_,
                                 est_malicious_, rng_);
    }

    RoundRecord record;
    record.round = t;

    // Realized outcomes fed back to learning backends (skipped entirely
    // for BiP, keeping its per-round cost and RNG stream unchanged).
    std::vector<policy::RoundOutcome> outcomes;
    if (learning) outcomes.resize(n);

    for (std::size_t i = 0; i < n; ++i) {
      SimWorkerSpec& w = workers_[i];
      if (!w.active_at(t)) {
        // Outside the churn window: no participation, no pay, no RNG
        // draws; keep the history rectangular with a zero row.
        WorkerRound idle;
        idle.estimated_malicious = est_malicious_[i];
        history_.worker_history[i].push_back(idle);
        continue;
      }
      // Behaviour switch / masking (the dynamics the contract must adapt to).
      const SimWorkerSpec::Behaviour behaviour = w.behaviour_at(t);
      const double omega = behaviour.omega;
      const double true_accuracy = behaviour.accuracy_distance;

      // --- Worker: best response to the posted contract ----------------
      const contract::WorkerIncentives inc{w.beta, omega};
      const contract::BestResponse br =
          contract::best_response(contracts_[i], w.psi, inc);

      // Realized feedback is noisy around psi(y); the hook may tamper with
      // it (collusive boosts) before the physical >= 0 clamp.
      double feedback =
          br.feedback + rng_.normal(0.0, config_.feedback_noise);
      if (hook_ != nullptr) {
        feedback = hook_->adjust_feedback(t, i, feedback, rng_);
      }
      feedback = std::max(0.0, feedback);

      // Compensation this round comes from *last* round's feedback (Eq. 1).
      const double compensation = contracts_[i].pay(last_feedback_[i]);
      last_feedback_[i] = feedback;

      // --- Requester: update estimates from this round's observables ---
      double accuracy_sample =
          true_accuracy + rng_.normal(0.0, config_.accuracy_noise);
      if (hook_ != nullptr) {
        accuracy_sample =
            hook_->adjust_accuracy_sample(t, i, accuracy_sample, rng_);
      }
      accuracy_sample = std::max(0.0, accuracy_sample);
      est_accuracy_[i] = (1.0 - config_.ema_alpha) * est_accuracy_[i] +
                         config_.ema_alpha * accuracy_sample;
      // Maliciousness signal: biased workers produce large deviations.
      const double signal =
          1.0 / (1.0 + std::exp(-4.0 * (accuracy_sample - 0.9)));
      est_malicious_[i] = (1.0 - config_.ema_alpha) * est_malicious_[i] +
                          config_.ema_alpha * signal;

      const double weight =
          feedback_weight(config_.requester, est_accuracy_[i],
                          est_malicious_[i], w.partners);

      WorkerRound wr;
      wr.effort = br.effort;
      wr.feedback = feedback;
      wr.compensation = compensation;
      wr.worker_utility = compensation - w.beta * br.effort + omega * feedback;
      wr.estimated_malicious = est_malicious_[i];
      wr.weight = weight;
      history_.worker_history[i].push_back(wr);

      record.weighted_feedback += weight * feedback;
      record.total_compensation += compensation;

      if (learning) {
        // The arm's steady-state value to the requester: what this round's
        // contract pays at this round's feedback, weighted as the policy
        // saw the worker when it posted.
        outcomes[i].active = true;
        outcomes[i].feedback = feedback;
        outcomes[i].reward = views[i].weight * feedback -
                             config_.requester.mu * contracts_[i].pay(feedback);
      }
    }

    if (learning) policy_->observe(t, outcomes, rng_);

    record.requester_utility =
        record.weighted_feedback -
        config_.requester.mu * record.total_compensation;
    history_.cumulative_requester_utility += record.requester_utility;
    history_.rounds.push_back(record);
    next_round_ = t + 1;

    if (config_.checkpoint_every > 0 &&
        next_round_ % config_.checkpoint_every == 0) {
      write_checkpoint();
    }
  }

  StepStatus status;
  status.completed_rounds = next_round_ - first_round;
  status.next_round = next_round_;
  status.finished = next_round_ >= config_.rounds;
  status.cancelled = cancelled;
  status.cancel_reason = cancelled && cancel != nullptr
                             ? cancel->reason()
                             : util::CancelReason::kNone;
  status.cumulative_requester_utility =
      history_.cumulative_requester_utility;
  return status;
}

std::vector<SimWorkerSpec> preset_fleet(std::size_t workers,
                                        std::size_t malicious) {
  CCD_CHECK_MSG(malicious <= workers, "preset fleet: malicious > workers");
  std::vector<SimWorkerSpec> fleet;
  fleet.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    SimWorkerSpec w;
    const bool is_malicious = i < malicious;
    w.name = (is_malicious ? "malicious" : "honest") + std::to_string(i);
    w.psi = effort::QuadraticEffort(-1.0, 8.0, 2.0);
    w.omega = is_malicious ? 0.6 : 0.0;
    w.accuracy_distance = is_malicious ? 1.7 : 0.3;
    fleet.push_back(w);
  }
  return fleet;
}

}  // namespace ccd::core
