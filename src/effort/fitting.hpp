// Effort-function fitting (paper §IV-B, Table III).
//
// Fits polynomial feedback-vs-effort curves per worker class (or per worker
// / per community), compares the norm of residuals across degrees 1..6, and
// produces the concave quadratic QuadraticEffort the contract machinery
// requires. If the unconstrained quadratic fit violates concavity or
// monotonicity-at-zero (possible on small noisy samples), the fit is
// projected: the offending coefficient is pinned to a feasible value and
// the remaining coefficients are re-fit by least squares.
#pragma once

#include <cstddef>
#include <vector>

#include "data/metrics.hpp"
#include "effort/effort_model.hpp"

namespace ccd::effort {

struct FitConfig {
  /// Degrees compared in the NoR table.
  std::size_t min_degree = 1;
  std::size_t max_degree = 6;
  /// Concavity floor used when projecting a non-concave fit: r2 is pinned
  /// to -|projection_r2_scale| * (mean feedback / mean effort^2).
  double projection_r2_scale = 0.05;
};

struct EffortFit {
  QuadraticEffort model{-1.0, 1.0, 0.0};
  /// NoR of the (possibly projected) quadratic on the sample.
  double norm_of_residuals = 0.0;
  /// True if the unconstrained fit violated r2 < 0 or r1 > 0 and was
  /// projected onto the feasible set.
  bool projected = false;
  /// True if this class had too few samples and another class's fit (or
  /// the library default) was substituted.
  bool fallback = false;
  std::size_t sample_count = 0;
};

/// Fit a concave quadratic effort function to (effort, feedback) samples.
/// Requires at least 3 samples.
EffortFit fit_effort_function(const std::vector<data::EffortSample>& samples,
                              const FitConfig& config = {});

/// NoR for each degree in [config.min_degree, config.max_degree] — one row
/// of Table III.
std::vector<double> nor_comparison(
    const std::vector<data::EffortSample>& samples,
    const FitConfig& config = {});

/// Per-class fits over a whole trace (honest / NCM / CM), the granularity
/// the paper's evaluation uses. Classes with fewer than 3 samples (e.g. a
/// trace with no malicious workers at all) fall back to the honest fit,
/// marked with EffortFit::fallback; an all-but-empty trace falls back to
/// the library's default curve.
struct ClassFits {
  EffortFit honest;
  EffortFit ncm;
  EffortFit cm;
};

ClassFits fit_all_classes(const data::WorkerMetrics& metrics,
                          const FitConfig& config = {});

/// Aggregate the (effort, feedback) samples of a set of workers into
/// community-level sums per round index — the meta-worker view of Eq. 3,
/// where the community's feedback is a function of the summed effort.
std::vector<data::EffortSample> community_sum_samples(
    const data::ReviewTrace& trace, const data::WorkerMetrics& metrics,
    const std::vector<data::WorkerId>& members);

}  // namespace ccd::effort
