// The effort function ψ (paper Eq. 2/19): a concave, twice-differentiable
// map from a worker's effort level y to the feedback q the work earns.
//
// After the NoR comparison of Table III the paper adopts quadratic
// ψ(y) = r2 y^2 + r1 y + r0 with r2 < 0 (concave) and r1 > 0 (increasing at
// zero effort). All contract construction (Lemma 4.1, Eq. 39) consumes ψ
// through this class: evaluation, derivative, inverse derivative, and the
// validity domain [0, y_peak) on which ψ remains strictly increasing.
#pragma once

#include <string>

#include "math/polynomial.hpp"

namespace ccd::effort {

class QuadraticEffort {
 public:
  /// Requires r2 < 0 and r1 > 0; throws ccd::ContractError otherwise.
  QuadraticEffort(double r2, double r1, double r0);

  double r2() const { return r2_; }
  double r1() const { return r1_; }
  double r0() const { return r0_; }

  /// ψ(y).
  double operator()(double y) const { return (r2_ * y + r1_) * y + r0_; }

  /// ψ'(y) = 2 r2 y + r1.
  double derivative(double y) const { return 2.0 * r2_ * y + r1_; }

  /// Inverse of ψ' (well-defined since ψ' is strictly decreasing):
  /// the y with ψ'(y) = slope.
  double derivative_inverse(double slope) const {
    return (slope - r1_) / (2.0 * r2_);
  }

  /// The vertex -r1/(2 r2): ψ is strictly increasing on [0, y_peak).
  double y_peak() const { return -r1_ / (2.0 * r2_); }

  /// True if ψ is strictly increasing on [0, y_hi].
  bool increasing_on(double y_hi) const { return derivative(y_hi) > 0.0; }

  /// Largest effort the contract machinery should partition:
  /// `margin` (0,1) of the way to the vertex, so ψ' stays bounded away
  /// from zero on the whole partition.
  double usable_domain(double margin = 0.95) const { return margin * y_peak(); }

  math::Polynomial as_polynomial() const {
    return math::Polynomial::quadratic(r0_, r1_, r2_);
  }

  std::string to_string(int precision = 4) const;

 private:
  double r2_;
  double r1_;
  double r0_;
};

}  // namespace ccd::effort
