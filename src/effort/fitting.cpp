#include "effort/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "math/polyfit.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace ccd::effort {
namespace {

void split_samples(const std::vector<data::EffortSample>& samples,
                   std::vector<double>& xs, std::vector<double>& ys) {
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const data::EffortSample& s : samples) {
    xs.push_back(s.effort);
    ys.push_back(s.feedback);
  }
}

double mean_of(const std::vector<double>& v) {
  double acc = 0.0;
  for (const double x : v) acc += x;
  return v.empty() ? 0.0 : acc / static_cast<double>(v.size());
}

}  // namespace

EffortFit fit_effort_function(const std::vector<data::EffortSample>& samples,
                              const FitConfig& config) {
  CCD_CHECK_MSG(samples.size() >= 3,
                "effort fitting needs at least 3 samples, got "
                    << samples.size());
  CCD_FAULT_POINT("effort.fit",
                  (static_cast<std::uint64_t>(samples.front().worker) << 24) ^
                      samples.size(),
                  MathError);
  std::vector<double> xs, ys;
  split_samples(samples, xs, ys);

  EffortFit fit;
  fit.sample_count = samples.size();

  const math::PolyFitResult quad = math::polyfit(xs, ys, 2);
  double r0 = quad.polynomial.coefficient(0);
  double r1 = quad.polynomial.coefficient(1);
  double r2 = quad.polynomial.coefficient(2);

  if (r2 < 0.0 && r1 > 0.0) {
    fit.model = QuadraticEffort(r2, r1, r0);
    fit.norm_of_residuals = quad.norm_of_residuals;
    return fit;
  }

  // Projection onto the feasible set {r2 < 0, r1 > 0}: pin r2 to a gentle
  // data-scaled curvature, then least-squares the linear part on the
  // residual, finally pin r1 if it still comes out non-positive.
  fit.projected = true;
  const double mx = std::max(1e-9, mean_of(xs));
  const double my = std::max(1e-9, mean_of(ys));
  if (!(r2 < 0.0)) {
    r2 = -std::abs(config.projection_r2_scale) * my / (mx * mx);
  }
  std::vector<double> residual(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    residual[i] = ys[i] - r2 * xs[i] * xs[i];
  }
  const math::PolyFitResult lin = math::polyfit(xs, residual, 1);
  r0 = lin.polynomial.coefficient(0);
  r1 = lin.polynomial.coefficient(1);
  if (!(r1 > 0.0)) {
    r1 = 0.1 * my / mx;
    double intercept = 0.0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
      intercept += ys[i] - r2 * xs[i] * xs[i] - r1 * xs[i];
    }
    r0 = intercept / static_cast<double>(ys.size());
  }
  fit.model = QuadraticEffort(r2, r1, r0);
  fit.norm_of_residuals =
      math::norm_of_residuals(fit.model.as_polynomial(), xs, ys);
  CCD_LOG_DEBUG << "effort fit projected onto feasible set: "
                << fit.model.to_string();
  return fit;
}

std::vector<double> nor_comparison(
    const std::vector<data::EffortSample>& samples, const FitConfig& config) {
  CCD_CHECK_MSG(samples.size() > config.max_degree,
                "NoR comparison needs more samples than the max degree");
  std::vector<double> xs, ys;
  split_samples(samples, xs, ys);
  return math::nor_by_degree(xs, ys, config.min_degree, config.max_degree);
}

ClassFits fit_all_classes(const data::WorkerMetrics& metrics,
                          const FitConfig& config) {
  const auto fit_or = [&](data::WorkerClass cls,
                          const EffortFit& fallback_fit) {
    const auto samples = metrics.samples_of_class(cls);
    if (samples.size() < 3) {
      EffortFit fit = fallback_fit;
      fit.fallback = true;
      fit.sample_count = samples.size();
      return fit;
    }
    return fit_effort_function(samples, config);
  };

  // The library default, should even the honest class be (nearly) empty.
  EffortFit default_fit;
  default_fit.model = QuadraticEffort(-1.0, 8.0, 2.0);
  default_fit.fallback = true;

  ClassFits fits;
  fits.honest = fit_or(data::WorkerClass::kHonest, default_fit);
  fits.ncm = fit_or(data::WorkerClass::kNonCollusiveMalicious, fits.honest);
  fits.cm = fit_or(data::WorkerClass::kCollusiveMalicious, fits.honest);
  return fits;
}

std::vector<data::EffortSample> community_sum_samples(
    const data::ReviewTrace& trace, const data::WorkerMetrics& metrics,
    const std::vector<data::WorkerId>& members) {
  CCD_CHECK_MSG(!members.empty(), "community must have members");
  // Sum member effort and feedback per round index (the meta-worker of
  // Eq. 3: community feedback as a function of summed effort).
  std::map<std::uint32_t, data::EffortSample> by_round;
  for (const data::WorkerId wid : members) {
    for (const data::ReviewId rid : trace.reviews_of_worker(wid)) {
      const data::Review& r = trace.review(rid);
      data::EffortSample& s = by_round[r.round];
      s.worker = members.front();
      s.review = rid;
      s.effort += metrics.effort_level(rid);
      s.feedback += metrics.feedback(rid);
    }
  }
  std::vector<data::EffortSample> out;
  out.reserve(by_round.size());
  for (const auto& [round, sample] : by_round) out.push_back(sample);
  return out;
}

}  // namespace ccd::effort
