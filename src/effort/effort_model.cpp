#include "effort/effort_model.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::effort {

QuadraticEffort::QuadraticEffort(double r2, double r1, double r0)
    : r2_(r2), r1_(r1), r0_(r0) {
  if (!(r2 < 0.0)) {
    throw ContractError("effort function must be concave (r2 < 0), got r2=" +
                        util::format_double(r2, 6));
  }
  if (!(r1 > 0.0)) {
    throw ContractError(
        "effort function must be increasing at zero effort (r1 > 0), got r1=" +
        util::format_double(r1, 6));
  }
}

std::string QuadraticEffort::to_string(int precision) const {
  std::ostringstream os;
  os << "psi(y) = " << util::format_double(r2_, precision) << "*y^2 + "
     << util::format_double(r1_, precision) << "*y + "
     << util::format_double(r0_, precision);
  return os.str();
}

}  // namespace ccd::effort
