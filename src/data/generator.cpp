#include "data/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ccd::data {
namespace {

/// Number of private target products reserved for a CM community.
std::size_t community_pool_size(std::size_t community_size) {
  return std::max<std::size_t>(2, community_size / 2 + 1);
}

double clamp_score(double s) { return std::clamp(s, 1.0, 5.0); }

}  // namespace

GeneratorParams GeneratorParams::small() {
  GeneratorParams p;
  p.seed = 7;
  p.n_honest = 300;
  p.n_ncm = 25;
  p.community_sizes = {2, 2, 3, 4, 6};
  p.n_products = 1200;
  p.reviews_mu_log = 1.3;
  return p;
}

GeneratorParams GeneratorParams::medium() {
  GeneratorParams p;
  p.seed = 42;
  p.n_honest = 1800;
  p.n_ncm = 130;
  p.community_sizes = {2, 2, 2, 2, 2, 3, 3, 3, 4, 5, 6, 6, 12};
  p.n_products = 7000;
  return p;
}

GeneratorParams GeneratorParams::amazon2015() {
  GeneratorParams p;
  p.seed = 2015;
  p.n_honest = 18162;
  p.n_ncm = 1312;
  // Table II census: 47 communities, 212 workers.
  // 24 of size 2 (51.1%), 10 of size 3 (21.3%), 3 of size 4 (6.4%),
  // 1 of size 5 (2.1%), 5 of size 6 (10.6%), two mid-size, two >= 10 (4.3%).
  p.community_sizes.clear();
  for (int i = 0; i < 24; ++i) p.community_sizes.push_back(2);
  for (int i = 0; i < 10; ++i) p.community_sizes.push_back(3);
  for (int i = 0; i < 3; ++i) p.community_sizes.push_back(4);
  p.community_sizes.push_back(5);
  for (int i = 0; i < 5; ++i) p.community_sizes.push_back(6);
  p.community_sizes.push_back(7);
  p.community_sizes.push_back(8);
  p.community_sizes.push_back(35);
  p.community_sizes.push_back(37);
  p.n_products = 75508;
  p.reviews_mu_log = 1.28;  // ~118k reviews over 19,686 workers
  p.reviews_sigma_log = 0.95;
  return p;
}

GeneratorParams GeneratorParams::from_population(
    std::size_t n_workers, std::size_t n_malicious,
    std::vector<std::size_t> community_sizes, std::uint64_t seed) {
  std::size_t planted = 0;
  for (const std::size_t size : community_sizes) planted += size;
  if (planted > n_malicious) {
    std::string sizes;
    for (std::size_t i = 0; i < community_sizes.size(); ++i) {
      if (i > 0) sizes += ',';
      sizes += std::to_string(community_sizes[i]);
    }
    throw ConfigError("community_sizes [" + sizes + "] plant " +
                      std::to_string(planted) +
                      " collusive workers but the malicious budget is only " +
                      std::to_string(n_malicious) +
                      " — refusing to truncate the plant");
  }
  if (n_malicious >= n_workers) {
    throw ConfigError("malicious budget " + std::to_string(n_malicious) +
                      " leaves no honest workers in a population of " +
                      std::to_string(n_workers));
  }
  GeneratorParams p = GeneratorParams::small();
  p.seed = seed;
  p.n_honest = n_workers - n_malicious;
  p.n_ncm = n_malicious - planted;
  p.community_sizes = std::move(community_sizes);
  p.n_sybil = 0;
  // Denser review histories than small(): the score-deviation detector
  // shrinks workers below min_reviews_full_confidence toward the prior,
  // so scenario populations need enough evidence per worker for detection
  // quality to be a property of the adversary, not of sample starvation.
  p.reviews_mu_log = 1.8;
  p.min_reviews = 4;
  // Products scale with the malicious pools plus room for honest roaming.
  std::size_t reserved = p.n_ncm * 2;
  for (const std::size_t size : p.community_sizes) {
    reserved += community_pool_size(size);
  }
  p.n_products = std::max<std::size_t>(reserved + 10 + 4 * n_workers, 200);
  return p;
}

std::size_t GeneratorParams::malicious_count() const {
  std::size_t planted = 0;
  for (const std::size_t size : community_sizes) planted += size;
  return n_ncm + planted + n_sybil;
}

void GeneratorParams::validate() const {
  const auto check_behaviour = [](const ClassBehaviour& b, const char* name) {
    CCD_CHECK_MSG(b.a2 < 0.0, "feedback law for " << name << " must be concave (a2 < 0)");
    CCD_CHECK_MSG(b.a1 > 0.0, "feedback law for " << name << " must be increasing at 0 (a1 > 0)");
    CCD_CHECK_MSG(b.effort_cap > 0.0, "effort cap for " << name << " must be positive");
    CCD_CHECK_MSG(2.0 * b.a2 * b.effort_cap + b.a1 > 0.0,
                  "feedback law for " << name
                      << " must stay increasing up to the effort cap");
    CCD_CHECK_MSG(b.feedback_noise >= 0.0, "feedback noise must be >= 0");
    CCD_CHECK_MSG(b.score_noise >= 0.0, "score noise must be >= 0");
  };
  check_behaviour(honest, "honest");
  check_behaviour(ncm, "ncm");
  check_behaviour(cm, "cm");
  check_behaviour(sybil, "sybil");

  CCD_CHECK_MSG(n_honest > 0, "need at least one honest worker");
  CCD_CHECK_MSG(min_reviews >= 1, "min_reviews must be >= 1");
  CCD_CHECK_MSG(max_reviews >= min_reviews, "max_reviews < min_reviews");
  for (const std::size_t size : community_sizes) {
    CCD_CHECK_MSG(size >= 2, "a collusive community needs >= 2 workers");
  }
  CCD_CHECK_MSG(expert_fraction >= 0.0 && expert_fraction <= 1.0,
                "expert_fraction must be in [0,1]");
  CCD_CHECK_MSG(collusion_upvote_per_partner >= 0.0,
                "collusion upvote boost must be >= 0");
  CCD_CHECK_MSG(n_sybil == 0 || n_sybil >= 2,
                "a sybil swarm needs >= 2 identities (got " << n_sybil << ")");
  CCD_CHECK_MSG(n_sybil == 0 || sybil_pool_size >= 2,
                "sybil_pool_size must be >= 2 when the swarm is on");
  CCD_CHECK_MSG(churn_arrival_mean >= 0.0, "churn_arrival_mean must be >= 0");
  CCD_CHECK_MSG(churn_lifetime_mean >= 0.0, "churn_lifetime_mean must be >= 0");

  // Malicious workers use private product pools; make sure they fit and
  // leave a general pool for honest workers.
  std::size_t reserved = 0;
  for (const std::size_t size : community_sizes) {
    reserved += community_pool_size(size);
  }
  reserved += n_ncm * 2;  // up to two private products per NCM worker
  if (n_sybil > 0) reserved += sybil_pool_size;
  CCD_CHECK_MSG(reserved + 10 <= n_products,
                "n_products too small: " << reserved
                    << " reserved for malicious pools, only " << n_products
                    << " products configured");
}

ReviewTrace generate_trace(const GeneratorParams& params) {
  params.validate();
  util::Rng rng(params.seed);
  ReviewTrace trace;

  // ---- Products -----------------------------------------------------------
  for (std::size_t i = 0; i < params.n_products; ++i) {
    Product product;
    product.id = static_cast<ProductId>(i);
    product.true_quality = rng.uniform(1.5, 5.0);
    trace.add_product(product);
  }

  // Product layout: [CM community pools][NCM private pools][general pool].
  std::size_t next_product = 0;
  std::vector<std::vector<ProductId>> community_pools;
  community_pools.reserve(params.community_sizes.size());
  for (const std::size_t size : params.community_sizes) {
    std::vector<ProductId> pool;
    const std::size_t pool_size = community_pool_size(size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      pool.push_back(static_cast<ProductId>(next_product++));
    }
    community_pools.push_back(std::move(pool));
  }
  std::vector<std::vector<ProductId>> ncm_pools;
  ncm_pools.reserve(params.n_ncm);
  for (std::size_t i = 0; i < params.n_ncm; ++i) {
    ncm_pools.push_back({static_cast<ProductId>(next_product),
                         static_cast<ProductId>(next_product + 1)});
    next_product += 2;
  }
  std::vector<ProductId> sybil_pool;
  if (params.n_sybil > 0) {
    for (std::size_t i = 0; i < params.sybil_pool_size; ++i) {
      sybil_pool.push_back(static_cast<ProductId>(next_product++));
    }
  }
  const std::size_t general_begin = next_product;

  // ---- Workers ------------------------------------------------------------
  WorkerId next_worker = 0;
  const auto add_worker = [&](WorkerClass cls, std::int32_t community) {
    Worker w;
    w.id = next_worker++;
    w.true_class = cls;
    w.true_community = community;
    w.skill = rng.lognormal(0.0, 0.3);
    if (cls == WorkerClass::kHonest) {
      w.expert_badge = rng.bernoulli(params.expert_fraction);
      if (w.expert_badge) w.skill *= 1.6;
    }
    trace.add_worker(w);
    return w.id;
  };

  std::vector<WorkerId> honest_ids;
  honest_ids.reserve(params.n_honest);
  for (std::size_t i = 0; i < params.n_honest; ++i) {
    honest_ids.push_back(add_worker(WorkerClass::kHonest, kNoCommunity));
  }
  std::vector<WorkerId> ncm_ids;
  ncm_ids.reserve(params.n_ncm);
  for (std::size_t i = 0; i < params.n_ncm; ++i) {
    ncm_ids.push_back(add_worker(WorkerClass::kNonCollusiveMalicious, kNoCommunity));
  }
  std::vector<std::vector<WorkerId>> community_members;
  community_members.reserve(params.community_sizes.size());
  for (std::size_t c = 0; c < params.community_sizes.size(); ++c) {
    std::vector<WorkerId> members;
    for (std::size_t i = 0; i < params.community_sizes[c]; ++i) {
      members.push_back(
          add_worker(WorkerClass::kCollusiveMalicious, static_cast<std::int32_t>(c)));
    }
    community_members.push_back(std::move(members));
  }
  // Sybil swarm: appended as one extra ground-truth community, so the
  // clustering metrics can score recall against it like any planted CM group.
  std::vector<WorkerId> sybil_ids;
  sybil_ids.reserve(params.n_sybil);
  for (std::size_t i = 0; i < params.n_sybil; ++i) {
    sybil_ids.push_back(
        add_worker(WorkerClass::kCollusiveMalicious,
                   static_cast<std::int32_t>(params.community_sizes.size())));
  }

  // ---- Reviews ------------------------------------------------------------
  ReviewId next_review = 0;
  const auto review_count = [&]() {
    const double draw =
        std::round(rng.lognormal(params.reviews_mu_log, params.reviews_sigma_log));
    const double clamped = std::clamp(
        draw, static_cast<double>(params.min_reviews),
        static_cast<double>(params.max_reviews));
    return static_cast<std::size_t>(clamped);
  };

  // Worker churn: the activity window [arrival, arrival + lifetime) ∩
  // [0, campaign_rounds) bounds how many reviews the worker can place
  // (the trace's `round` field stays the per-worker sequential index the
  // schema requires). Late arrivals and short lifetimes truncate review
  // histories — the mid-campaign arrival/departure effect detection must
  // survive. With churn off nothing is drawn from the RNG, keeping legacy
  // seeded traces bitwise intact.
  const auto churned_count = [&](std::size_t n) {
    if (params.campaign_rounds == 0) return n;
    const std::uint64_t arrival = std::min<std::uint64_t>(
        rng.poisson(params.churn_arrival_mean), params.campaign_rounds - 1);
    const std::uint64_t lifetime = 1 + rng.poisson(params.churn_lifetime_mean);
    const auto window = static_cast<std::size_t>(
        std::min<std::uint64_t>(lifetime, params.campaign_rounds - arrival));
    return std::clamp(n, params.min_reviews, std::max(params.min_reviews, window));
  };

  // One review from `worker` on `product` with the class behaviour `b`.
  // `partner_count` > 0 adds the collusion upvote boost.
  const auto emit_review = [&](const Worker& worker, ProductId product,
                               std::uint32_t round, const ClassBehaviour& b,
                               std::size_t partner_count) {
    // Latent effort.
    double y = rng.lognormal(b.effort_mu_log, b.effort_sigma_log);
    y = std::clamp(y, 0.05, b.effort_cap);

    // Feedback from the concave law + noise (+ collusion boost).
    double q = b.a2 * y * y + b.a1 * y + b.a0;
    q += rng.normal(0.0, b.feedback_noise);
    if (partner_count > 0) {
      q += static_cast<double>(rng.poisson(
          params.collusion_upvote_per_partner * static_cast<double>(partner_count)));
    }
    const auto upvotes = static_cast<std::uint32_t>(std::max(0.0, std::round(q)));

    // Score: honest tracks quality, malicious is positively biased.
    double score;
    if (worker.true_class == WorkerClass::kHonest) {
      score = clamp_score(trace.product(product).true_quality +
                          rng.normal(0.0, b.score_noise));
    } else {
      score = clamp_score(b.score_bias_target + rng.normal(0.0, b.score_noise));
    }

    // Review body length scales with effort (the paper's §V proxy), with
    // per-review noise.
    const double chars = y * 150.0 * rng.uniform(0.8, 1.2);
    const auto length = static_cast<std::uint32_t>(std::max(20.0, std::round(chars)));

    const double verified_prob = worker.true_class == WorkerClass::kHonest
                                     ? params.verified_prob_honest
                                     : params.verified_prob_malicious;
    Review r;
    r.id = next_review++;
    r.worker = worker.id;
    r.product = product;
    r.round = round;
    r.score = score;
    r.length_chars = length;
    r.upvotes = upvotes;
    r.verified = rng.bernoulli(verified_prob);
    trace.add_review(r);
  };

  // Honest workers roam the general product pool.
  CCD_CHECK(general_begin < params.n_products);
  for (const WorkerId id : honest_ids) {
    const std::size_t n = churned_count(review_count());
    for (std::size_t k = 0; k < n; ++k) {
      const auto product = static_cast<ProductId>(rng.uniform_int(
          static_cast<std::int64_t>(general_begin),
          static_cast<std::int64_t>(params.n_products) - 1));
      emit_review(trace.worker(id), product, static_cast<std::uint32_t>(k),
                  params.honest, 0);
    }
  }

  // NCM workers stay on their private products, so the same-target collusion
  // rule never links them to anyone.
  for (std::size_t i = 0; i < ncm_ids.size(); ++i) {
    const std::size_t n = churned_count(review_count());
    for (std::size_t k = 0; k < n; ++k) {
      const ProductId product =
          ncm_pools[i][static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(ncm_pools[i].size()) - 1))];
      emit_review(trace.worker(ncm_ids[i]), product,
                  static_cast<std::uint32_t>(k), params.ncm, 0);
    }
  }

  // CM workers review their community pool; the first review is pinned to
  // the pool's anchor product so every member provably shares a target with
  // the rest of the community (the auxiliary graph's component is exact).
  for (std::size_t c = 0; c < community_members.size(); ++c) {
    const std::vector<ProductId>& pool = community_pools[c];
    const std::size_t partners = community_members[c].size() - 1;
    for (const WorkerId id : community_members[c]) {
      const std::size_t n = churned_count(review_count());
      for (std::size_t k = 0; k < n; ++k) {
        const ProductId product =
            k == 0 ? pool.front()
                   : pool[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(pool.size()) - 1))];
        emit_review(trace.worker(id), product, static_cast<std::uint32_t>(k),
                    params.cm, partners);
      }
    }
  }

  // Sybil identities all work the swarm's shared pool (first review pinned
  // to the anchor, like a CM community) and pump each other's feedback.
  if (params.n_sybil > 0) {
    const std::size_t partners = params.n_sybil - 1;
    for (const WorkerId id : sybil_ids) {
      const std::size_t n = churned_count(review_count());
      for (std::size_t k = 0; k < n; ++k) {
        const ProductId product =
            k == 0 ? sybil_pool.front()
                   : sybil_pool[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(sybil_pool.size()) - 1))];
        emit_review(trace.worker(id), product, static_cast<std::uint32_t>(k),
                    params.sybil, partners);
      }
    }
  }

  trace.build_indexes();
  trace.validate();
  CCD_LOG_DEBUG << "generated trace: " << trace.stats().to_string();
  return trace;
}

}  // namespace ccd::data
