// Derived per-worker / per-review quantities — the paper's §V
// parametrization of the model on the review trace:
//
//  1. feedback of a review  = its helpfulness upvotes,
//  2. expertise of a worker = average feedback over the worker's reviews,
//  3. length of a review    = its character count,
//  4. effort level          = expertise x length (normalized).
//
// The raw expertise x length product is in arbitrary units, so WorkerMetrics
// rescales it to a dimensionless effort level with a configurable mean;
// downstream contract math then works on a stable numeric range regardless
// of trace scale.
#pragma once

#include <cstddef>
#include <vector>

#include "data/trace.hpp"

namespace ccd::data {

struct MetricsConfig {
  /// Global mean of the normalized effort level.
  double target_mean_effort = 1.6;
};

/// One (effort, feedback) observation — the unit the effort-function fitting
/// and the per-class comparisons consume.
struct EffortSample {
  WorkerId worker = 0;
  ReviewId review = 0;
  double effort = 0.0;
  double feedback = 0.0;
};

class WorkerMetrics {
 public:
  /// Computes expertise and the effort normalizer from `trace` (indexes must
  /// be built).
  WorkerMetrics(const ReviewTrace& trace, MetricsConfig config = {});

  /// Average upvotes over the worker's reviews (0 if the worker has none).
  double expertise(WorkerId id) const;

  /// Normalized effort level of a review.
  double effort_level(ReviewId id) const;

  /// Feedback (upvotes) of a review.
  double feedback(ReviewId id) const;

  /// Scale factor applied to expertise x length (exposed for provenance).
  double effort_scale() const { return effort_scale_; }

  /// All samples of workers in the given class.
  std::vector<EffortSample> samples_of_class(WorkerClass cls) const;

  /// All samples of one worker.
  std::vector<EffortSample> samples_of_worker(WorkerId id) const;

  /// Per-worker mean effort / mean feedback (for Fig. 7-style comparisons).
  double mean_effort_of_worker(WorkerId id) const;
  double mean_feedback_of_worker(WorkerId id) const;

 private:
  const ReviewTrace& trace_;
  std::vector<double> expertise_;
  double effort_scale_ = 1.0;
};

}  // namespace ccd::data
