// Synthetic Amazon-like review-trace generator.
//
// The paper evaluates on a proprietary crawl of Amazon reviews with
// ground-truth malicious labels (Fayazi et al., SIGIR'15). That trace is not
// public, so this generator produces a synthetic trace with the same schema
// and — at the `amazon2015()` preset — the same headline statistics:
// ~19,686 reviewers (18,162 honest + 1,312 NCM + 212 CM), ~75,508 products,
// ~118k reviews, and 47 collusive communities whose size distribution
// matches Table II. Per-class behaviour matches the shapes the paper
// measures (Fig. 7, Table III):
//
//  * every class draws latent effort from the same distribution (similar
//    average effort across classes),
//  * feedback (upvotes) follows a concave quadratic law of effort + noise,
//  * collusive workers get an extra upvote boost from their partners, which
//    inflates their feedback well above the other classes,
//  * malicious scores are positively biased regardless of product quality,
//    honest scores track true quality.
//
// Product targeting is arranged so the paper's collusion rule ("two
// malicious workers collude iff they share a target product") recovers the
// planted communities exactly: each CM community has a private product pool
// with a shared anchor product; each NCM worker has private products.
#pragma once

#include <cstdint>
#include <vector>

#include "data/trace.hpp"

namespace ccd::data {

/// Ground-truth behaviour of one worker class.
struct ClassBehaviour {
  /// Feedback law in latent effort: q(y) = a2 y^2 + a1 y + a0 (concave: a2<0).
  double a2 = -1.0;
  double a1 = 8.0;
  double a0 = 2.0;
  /// Latent per-review effort ~ LogNormal(mu_log, sigma_log), clipped.
  double effort_mu_log = 0.3;
  double effort_sigma_log = 0.5;
  double effort_cap = 3.8;
  /// Gaussian noise added to the feedback law before rounding.
  double feedback_noise = 1.2;
  /// Score model: honest uses bias 0 (score = quality + noise); malicious
  /// uses a fixed positive target (score = bias_target + noise).
  double score_bias_target = 0.0;
  double score_noise = 0.45;
};

struct GeneratorParams {
  std::uint64_t seed = 42;

  std::size_t n_honest = 1800;
  std::size_t n_ncm = 130;
  /// One entry per CM community (its worker count).
  std::vector<std::size_t> community_sizes = {2, 2, 2, 2, 3, 3, 4, 6};
  std::size_t n_products = 7000;

  /// Sybil swarm: `n_sybil` cheap identities sharing one behaviour profile
  /// and one private target pool. The swarm is planted as one ground-truth
  /// collusive community appended after `community_sizes` (the shared pool
  /// makes the paper's same-target rule link every pair), so detector /
  /// clustering recall against it is measurable. 0 disables; otherwise
  /// n_sybil >= 2.
  std::size_t n_sybil = 0;
  /// Products in the swarm's private pool (>= 2 when the swarm is on).
  std::size_t sybil_pool_size = 3;

  /// Worker churn: when `campaign_rounds` > 0 every worker is only active
  /// on a window [arrival, arrival + lifetime) ∩ [0, campaign_rounds),
  /// with arrival ~ Poisson(churn_arrival_mean) clamped into the campaign
  /// and lifetime ~ 1 + Poisson(churn_lifetime_mean). The window bounds
  /// the worker's review count (the trace's `round` field stays the
  /// per-worker sequential index the schema requires), so mid-campaign
  /// arrivals and departures show up as truncated review histories. 0
  /// keeps the legacy static population — and draws nothing from the RNG,
  /// so existing seeded traces are unchanged.
  std::size_t campaign_rounds = 0;
  double churn_arrival_mean = 0.0;
  double churn_lifetime_mean = 0.0;

  /// Reviews per worker ~ round(LogNormal), clamped to [min_reviews, ...).
  double reviews_mu_log = 1.45;
  double reviews_sigma_log = 0.9;
  std::size_t min_reviews = 1;
  std::size_t max_reviews = 200;

  /// Fraction of honest workers carrying the platform expert badge.
  double expert_fraction = 0.03;

  /// Honest: feedback law q = -y^2 + 8y + 2, scores track product quality.
  ClassBehaviour honest{};
  /// NCM: slightly weaker feedback law, strongly positive-biased scores.
  ClassBehaviour ncm{.a2 = -1.0,
                     .a1 = 7.0,
                     .a0 = 1.0,
                     .effort_cap = 3.3,
                     .score_bias_target = 4.9,
                     .score_noise = 0.25};
  /// CM: inflated feedback (community upvoting), positive-biased scores.
  /// Latent effort sits lower than the other classes: the paper's effort
  /// proxy is expertise x length, and CM expertise is upvote-inflated, so a
  /// lower latent effort keeps the *measured* per-class effort similar
  /// (Fig. 7's first observation) while CM feedback stays far higher.
  ClassBehaviour cm{.a2 = -1.8,
                    .a1 = 14.0,
                    .a0 = 6.0,
                    .effort_mu_log = -0.86,
                    .score_bias_target = 4.9,
                    .score_noise = 0.25};

  /// Sybil identities: cheap (low-effort) reviews whose feedback is pumped
  /// by the rest of the swarm, scores strongly biased.
  ClassBehaviour sybil{.a2 = -1.4,
                       .a1 = 10.0,
                       .a0 = 4.0,
                       .effort_mu_log = -1.2,
                       .effort_sigma_log = 0.35,
                       .effort_cap = 2.0,
                       .score_bias_target = 4.9,
                       .score_noise = 0.2};

  /// Mean extra upvotes a CM review receives per community partner.
  double collusion_upvote_per_partner = 1.1;

  double verified_prob_honest = 0.9;
  double verified_prob_malicious = 0.35;

  /// Small fast preset for unit tests (hundreds of workers).
  static GeneratorParams small();
  /// Medium preset for integration tests and examples (thousands).
  static GeneratorParams medium();
  /// Full-scale preset matching the paper's dataset statistics, including
  /// Table II's community-size census (47 communities, 212 CM workers).
  static GeneratorParams amazon2015();

  /// Build params from a population budget: `n_workers` total identities,
  /// `n_malicious` of them adversarial, with `community_sizes` drawn from
  /// the malicious budget and the remainder becoming NCM workers. Throws
  /// ccd::ConfigError — naming the offending values — when the community
  /// sizes overrun the malicious budget or the malicious budget overruns
  /// the population, instead of silently truncating the plant.
  static GeneratorParams from_population(std::size_t n_workers,
                                         std::size_t n_malicious,
                                         std::vector<std::size_t> community_sizes,
                                         std::uint64_t seed);

  /// Total malicious identities this config plants (NCM + CM + sybil).
  std::size_t malicious_count() const;

  /// Throws ccd::Error if inconsistent (e.g. not enough products for
  /// the private malicious pools, non-concave feedback laws).
  void validate() const;
};

/// Generate a full trace (indexes built, validate()d before returning).
ReviewTrace generate_trace(const GeneratorParams& params);

}  // namespace ccd::data
