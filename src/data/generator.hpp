// Synthetic Amazon-like review-trace generator.
//
// The paper evaluates on a proprietary crawl of Amazon reviews with
// ground-truth malicious labels (Fayazi et al., SIGIR'15). That trace is not
// public, so this generator produces a synthetic trace with the same schema
// and — at the `amazon2015()` preset — the same headline statistics:
// ~19,686 reviewers (18,162 honest + 1,312 NCM + 212 CM), ~75,508 products,
// ~118k reviews, and 47 collusive communities whose size distribution
// matches Table II. Per-class behaviour matches the shapes the paper
// measures (Fig. 7, Table III):
//
//  * every class draws latent effort from the same distribution (similar
//    average effort across classes),
//  * feedback (upvotes) follows a concave quadratic law of effort + noise,
//  * collusive workers get an extra upvote boost from their partners, which
//    inflates their feedback well above the other classes,
//  * malicious scores are positively biased regardless of product quality,
//    honest scores track true quality.
//
// Product targeting is arranged so the paper's collusion rule ("two
// malicious workers collude iff they share a target product") recovers the
// planted communities exactly: each CM community has a private product pool
// with a shared anchor product; each NCM worker has private products.
#pragma once

#include <cstdint>
#include <vector>

#include "data/trace.hpp"

namespace ccd::data {

/// Ground-truth behaviour of one worker class.
struct ClassBehaviour {
  /// Feedback law in latent effort: q(y) = a2 y^2 + a1 y + a0 (concave: a2<0).
  double a2 = -1.0;
  double a1 = 8.0;
  double a0 = 2.0;
  /// Latent per-review effort ~ LogNormal(mu_log, sigma_log), clipped.
  double effort_mu_log = 0.3;
  double effort_sigma_log = 0.5;
  double effort_cap = 3.8;
  /// Gaussian noise added to the feedback law before rounding.
  double feedback_noise = 1.2;
  /// Score model: honest uses bias 0 (score = quality + noise); malicious
  /// uses a fixed positive target (score = bias_target + noise).
  double score_bias_target = 0.0;
  double score_noise = 0.45;
};

struct GeneratorParams {
  std::uint64_t seed = 42;

  std::size_t n_honest = 1800;
  std::size_t n_ncm = 130;
  /// One entry per CM community (its worker count).
  std::vector<std::size_t> community_sizes = {2, 2, 2, 2, 3, 3, 4, 6};
  std::size_t n_products = 7000;

  /// Reviews per worker ~ round(LogNormal), clamped to [min_reviews, ...).
  double reviews_mu_log = 1.45;
  double reviews_sigma_log = 0.9;
  std::size_t min_reviews = 1;
  std::size_t max_reviews = 200;

  /// Fraction of honest workers carrying the platform expert badge.
  double expert_fraction = 0.03;

  /// Honest: feedback law q = -y^2 + 8y + 2, scores track product quality.
  ClassBehaviour honest{};
  /// NCM: slightly weaker feedback law, strongly positive-biased scores.
  ClassBehaviour ncm{.a2 = -1.0,
                     .a1 = 7.0,
                     .a0 = 1.0,
                     .effort_cap = 3.3,
                     .score_bias_target = 4.9,
                     .score_noise = 0.25};
  /// CM: inflated feedback (community upvoting), positive-biased scores.
  /// Latent effort sits lower than the other classes: the paper's effort
  /// proxy is expertise x length, and CM expertise is upvote-inflated, so a
  /// lower latent effort keeps the *measured* per-class effort similar
  /// (Fig. 7's first observation) while CM feedback stays far higher.
  ClassBehaviour cm{.a2 = -1.8,
                    .a1 = 14.0,
                    .a0 = 6.0,
                    .effort_mu_log = -0.86,
                    .score_bias_target = 4.9,
                    .score_noise = 0.25};

  /// Mean extra upvotes a CM review receives per community partner.
  double collusion_upvote_per_partner = 1.1;

  double verified_prob_honest = 0.9;
  double verified_prob_malicious = 0.35;

  /// Small fast preset for unit tests (hundreds of workers).
  static GeneratorParams small();
  /// Medium preset for integration tests and examples (thousands).
  static GeneratorParams medium();
  /// Full-scale preset matching the paper's dataset statistics, including
  /// Table II's community-size census (47 communities, 212 CM workers).
  static GeneratorParams amazon2015();

  /// Throws ccd::Error if inconsistent (e.g. not enough products for
  /// the private malicious pools, non-concave feedback laws).
  void validate() const;
};

/// Generate a full trace (indexes built, validate()d before returning).
ReviewTrace generate_trace(const GeneratorParams& params);

}  // namespace ccd::data
