#include "data/loader.hpp"

#include <cmath>
#include <limits>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace ccd::data {
namespace {

const std::vector<std::string> kWorkerHeader = {
    "id", "class", "community", "skill", "expert_badge"};
const std::vector<std::string> kProductHeader = {"id", "true_quality"};
const std::vector<std::string> kReviewHeader = {
    "id", "worker", "product", "round", "score",
    "length_chars", "upvotes", "verified"};

void expect_header(util::CsvReader& reader, const std::vector<std::string>& want,
                   const std::string& path) {
  util::CsvRow row;
  if (!reader.next(row) || row != want) {
    throw DataError("bad or missing header in " + path);
  }
}

[[noreturn]] void bad_row(const std::string& what, const std::string& path,
                          std::size_t line) {
  throw DataError(what + " in " + path + " line " + std::to_string(line));
}

std::uint32_t parse_id(const std::string& cell, const char* field,
                       const std::string& path, std::size_t line) {
  const long long v = util::parse_int(cell);
  if (v < 0 || v > std::numeric_limits<std::uint32_t>::max()) {
    bad_row(std::string("out-of-range ") + field + " id", path, line);
  }
  return static_cast<std::uint32_t>(v);
}

/// Parses one worker row; throws DataError/ConfigError describing the cell.
Worker parse_worker_row(const util::CsvRow& row, const std::string& path,
                        std::size_t line) {
  if (row.size() != kWorkerHeader.size()) bad_row("bad worker row", path, line);
  Worker w;
  w.id = parse_id(row[0], "worker", path, line);
  w.true_class = worker_class_from_string(row[1]);
  w.true_community = static_cast<std::int32_t>(util::parse_int(row[2]));
  w.skill = util::parse_double(row[3]);
  w.expert_badge = util::parse_bool(row[4]);
  return w;
}

Product parse_product_row(const util::CsvRow& row, const std::string& path,
                          std::size_t line) {
  if (row.size() != kProductHeader.size()) {
    bad_row("bad product row", path, line);
  }
  Product p;
  p.id = parse_id(row[0], "product", path, line);
  p.true_quality = util::parse_double(row[1]);
  return p;
}

/// Parses one review row. The raw feedback (upvotes) is parsed as a double
/// so lenient mode can route negative or non-finite values to the
/// sanitizer; strict mode rejects them. `round_raw` likewise preserves
/// negative rounds for the sanitizer.
ReviewRecord parse_review_row(const util::CsvRow& row, const std::string& path,
                              std::size_t line) {
  if (row.size() != kReviewHeader.size()) bad_row("bad review row", path, line);
  ReviewRecord rec;
  Review& r = rec.review;
  r.id = parse_id(row[0], "review", path, line);
  r.worker = parse_id(row[1], "worker", path, line);
  r.product = parse_id(row[2], "product", path, line);
  const long long round = util::parse_int(row[3]);
  // Negative / oversized rounds saturate; the sanitizer quarantines them as
  // out-of-range and strict mode rejects the row outright.
  r.round = (round < 0 || round > std::numeric_limits<std::uint32_t>::max())
                ? std::numeric_limits<std::uint32_t>::max()
                : static_cast<std::uint32_t>(round);
  r.score = util::parse_double(row[4]);
  const long long length = util::parse_int(row[5]);
  if (length < 0) bad_row("negative length_chars", path, line);
  r.length_chars = static_cast<std::uint32_t>(length);
  rec.feedback = util::parse_double(row[6]);
  r.upvotes = (rec.feedback >= 0.0 && std::isfinite(rec.feedback))
                  ? static_cast<std::uint32_t>(std::llround(rec.feedback))
                  : 0;
  r.verified = util::parse_bool(row[7]);
  return rec;
}

}  // namespace

void save_trace(const ReviewTrace& trace, const std::string& prefix) {
  {
    util::CsvWriter w(prefix + ".workers.csv");
    w.write_row(kWorkerHeader);
    for (const Worker& worker : trace.workers()) {
      w.write_row({std::to_string(worker.id), to_string(worker.true_class),
                   std::to_string(worker.true_community),
                   util::format_double(worker.skill, 6),
                   worker.expert_badge ? "1" : "0"});
    }
  }
  {
    util::CsvWriter w(prefix + ".products.csv");
    w.write_row(kProductHeader);
    for (const Product& product : trace.products()) {
      w.write_row({std::to_string(product.id),
                   util::format_double(product.true_quality, 6)});
    }
  }
  {
    util::CsvWriter w(prefix + ".reviews.csv");
    w.write_row(kReviewHeader);
    for (const Review& review : trace.reviews()) {
      w.write_row({std::to_string(review.id), std::to_string(review.worker),
                   std::to_string(review.product), std::to_string(review.round),
                   util::format_double(review.score, 4),
                   std::to_string(review.length_chars),
                   std::to_string(review.upvotes),
                   review.verified ? "1" : "0"});
    }
  }
}

ReviewTrace load_trace(const std::string& prefix) {
  ReviewTrace trace;
  {
    const std::string path = prefix + ".workers.csv";
    util::CsvReader reader(path);
    expect_header(reader, kWorkerHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      const std::size_t line = reader.line_number();
      Worker w;
      try {
        w = parse_worker_row(row, path, line);
      } catch (const DataError&) {
        throw;
      } catch (const Error& e) {
        bad_row(std::string("bad worker row (") + e.message() + ")", path,
                line);
      }
      if (!std::isfinite(w.skill)) bad_row("non-finite skill", path, line);
      trace.add_worker(w);
    }
  }
  {
    const std::string path = prefix + ".products.csv";
    util::CsvReader reader(path);
    expect_header(reader, kProductHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      const std::size_t line = reader.line_number();
      Product p;
      try {
        p = parse_product_row(row, path, line);
      } catch (const DataError&) {
        throw;
      } catch (const Error& e) {
        bad_row(std::string("bad product row (") + e.message() + ")", path,
                line);
      }
      if (!std::isfinite(p.true_quality)) {
        bad_row("non-finite true_quality", path, line);
      }
      trace.add_product(p);
    }
  }
  {
    const std::string path = prefix + ".reviews.csv";
    util::CsvReader reader(path);
    expect_header(reader, kReviewHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      const std::size_t line = reader.line_number();
      ReviewRecord rec;
      try {
        rec = parse_review_row(row, path, line);
      } catch (const DataError&) {
        throw;
      } catch (const Error& e) {
        bad_row(std::string("bad review row (") + e.message() + ")", path,
                line);
      }
      if (!std::isfinite(rec.review.score)) {
        bad_row("non-finite score", path, line);
      }
      if (!std::isfinite(rec.feedback)) {
        bad_row("non-finite feedback (upvotes)", path, line);
      }
      if (rec.feedback < 0.0) bad_row("negative feedback (upvotes)", path, line);
      if (rec.review.round == std::numeric_limits<std::uint32_t>::max()) {
        bad_row("out-of-range round", path, line);
      }
      trace.add_review(rec.review);
    }
  }
  trace.build_indexes();
  trace.validate();
  return trace;
}

namespace {

struct LenientCounters {
  std::size_t unparseable = 0;
  std::size_t aborted_files = 0;
  std::size_t rows_before_abort = 0;
};

/// Lenient per-file scan: rows that fail to parse are skipped (counted);
/// a reader failure mid-file (malformed framing, truncated quoting, I/O
/// error) abandons the file but keeps the rows already delivered, counting
/// the abort so the partial read stays visible. Missing files and bad
/// headers still throw — there is nothing to salvage.
template <typename OnRow>
void for_each_row_lenient(const std::string& path,
                          const std::vector<std::string>& header,
                          LenientCounters& counters, OnRow&& on_row) {
  util::CsvReader reader(path);
  expect_header(reader, header, path);
  std::size_t kept = 0;
  try {
    util::CsvRow row;
    while (reader.next(row)) {
      try {
        on_row(row, reader.line_number());
        ++kept;
      } catch (const Error&) {
        ++counters.unparseable;
      }
    }
  } catch (const Error&) {
    ++counters.aborted_files;
    counters.rows_before_abort += kept;
  }
}

}  // namespace

SanitizedTrace load_trace_sanitized(const std::string& prefix,
                                    const SanitizeConfig& config) {
  std::vector<Worker> workers;
  std::vector<Product> products;
  std::vector<ReviewRecord> reviews;
  LenientCounters counters;

  for_each_row_lenient(
      prefix + ".workers.csv", kWorkerHeader, counters,
      [&](const util::CsvRow& row, std::size_t line) {
        workers.push_back(parse_worker_row(row, prefix + ".workers.csv", line));
      });
  for_each_row_lenient(
      prefix + ".products.csv", kProductHeader, counters,
      [&](const util::CsvRow& row, std::size_t line) {
        products.push_back(
            parse_product_row(row, prefix + ".products.csv", line));
      });
  for_each_row_lenient(
      prefix + ".reviews.csv", kReviewHeader, counters,
      [&](const util::CsvRow& row, std::size_t line) {
        reviews.push_back(parse_review_row(row, prefix + ".reviews.csv", line));
      });

  SanitizedTrace out = sanitize_trace(workers, products, reviews, config);
  out.report.unparseable_rows = counters.unparseable;
  out.report.aborted_files = counters.aborted_files;
  out.report.rows_before_abort = counters.rows_before_abort;
  return out;
}

ReviewTrace load_trace_retrying(const std::string& prefix,
                                const util::RetryPolicy& retry) {
  return util::with_retry("load_trace", retry, [&](std::size_t attempt) {
    CCD_FAULT_POINT("io.load_trace", attempt, DataError);
    return load_trace(prefix);
  });
}

SanitizedTrace load_trace_sanitized_retrying(const std::string& prefix,
                                             const SanitizeConfig& config,
                                             const util::RetryPolicy& retry) {
  return util::with_retry("load_trace_sanitized", retry,
                          [&](std::size_t attempt) {
    CCD_FAULT_POINT("io.load_trace", attempt, DataError);
    return load_trace_sanitized(prefix, config);
  });
}

}  // namespace ccd::data
