#include "data/loader.hpp"

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::data {
namespace {

const std::vector<std::string> kWorkerHeader = {
    "id", "class", "community", "skill", "expert_badge"};
const std::vector<std::string> kProductHeader = {"id", "true_quality"};
const std::vector<std::string> kReviewHeader = {
    "id", "worker", "product", "round", "score",
    "length_chars", "upvotes", "verified"};

void expect_header(util::CsvReader& reader, const std::vector<std::string>& want,
                   const std::string& path) {
  util::CsvRow row;
  if (!reader.next(row) || row != want) {
    throw DataError("bad or missing header in " + path);
  }
}

}  // namespace

void save_trace(const ReviewTrace& trace, const std::string& prefix) {
  {
    util::CsvWriter w(prefix + ".workers.csv");
    w.write_row(kWorkerHeader);
    for (const Worker& worker : trace.workers()) {
      w.write_row({std::to_string(worker.id), to_string(worker.true_class),
                   std::to_string(worker.true_community),
                   util::format_double(worker.skill, 6),
                   worker.expert_badge ? "1" : "0"});
    }
  }
  {
    util::CsvWriter w(prefix + ".products.csv");
    w.write_row(kProductHeader);
    for (const Product& product : trace.products()) {
      w.write_row({std::to_string(product.id),
                   util::format_double(product.true_quality, 6)});
    }
  }
  {
    util::CsvWriter w(prefix + ".reviews.csv");
    w.write_row(kReviewHeader);
    for (const Review& review : trace.reviews()) {
      w.write_row({std::to_string(review.id), std::to_string(review.worker),
                   std::to_string(review.product), std::to_string(review.round),
                   util::format_double(review.score, 4),
                   std::to_string(review.length_chars),
                   std::to_string(review.upvotes),
                   review.verified ? "1" : "0"});
    }
  }
}

ReviewTrace load_trace(const std::string& prefix) {
  ReviewTrace trace;
  {
    const std::string path = prefix + ".workers.csv";
    util::CsvReader reader(path);
    expect_header(reader, kWorkerHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      if (row.size() != kWorkerHeader.size()) {
        throw DataError("bad worker row in " + path + " line " +
                        std::to_string(reader.line_number()));
      }
      Worker w;
      w.id = static_cast<WorkerId>(util::parse_int(row[0]));
      w.true_class = worker_class_from_string(row[1]);
      w.true_community = static_cast<std::int32_t>(util::parse_int(row[2]));
      w.skill = util::parse_double(row[3]);
      w.expert_badge = util::parse_bool(row[4]);
      trace.add_worker(w);
    }
  }
  {
    const std::string path = prefix + ".products.csv";
    util::CsvReader reader(path);
    expect_header(reader, kProductHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      if (row.size() != kProductHeader.size()) {
        throw DataError("bad product row in " + path + " line " +
                        std::to_string(reader.line_number()));
      }
      Product p;
      p.id = static_cast<ProductId>(util::parse_int(row[0]));
      p.true_quality = util::parse_double(row[1]);
      trace.add_product(p);
    }
  }
  {
    const std::string path = prefix + ".reviews.csv";
    util::CsvReader reader(path);
    expect_header(reader, kReviewHeader, path);
    util::CsvRow row;
    while (reader.next(row)) {
      if (row.size() != kReviewHeader.size()) {
        throw DataError("bad review row in " + path + " line " +
                        std::to_string(reader.line_number()));
      }
      Review r;
      r.id = static_cast<ReviewId>(util::parse_int(row[0]));
      r.worker = static_cast<WorkerId>(util::parse_int(row[1]));
      r.product = static_cast<ProductId>(util::parse_int(row[2]));
      r.round = static_cast<std::uint32_t>(util::parse_int(row[3]));
      r.score = util::parse_double(row[4]);
      r.length_chars = static_cast<std::uint32_t>(util::parse_int(row[5]));
      r.upvotes = static_cast<std::uint32_t>(util::parse_int(row[6]));
      r.verified = util::parse_bool(row[7]);
      trace.add_review(r);
    }
  }
  trace.build_indexes();
  trace.validate();
  return trace;
}

}  // namespace ccd::data
