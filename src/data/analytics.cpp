#include "data/analytics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::data {

std::vector<ProductSummary> product_summaries(const ReviewTrace& trace,
                                              std::size_t min_reviews) {
  CCD_CHECK_MSG(trace.indexes_built(), "analytics requires trace indexes");
  std::vector<ProductSummary> out;
  for (const Product& product : trace.products()) {
    const auto& review_ids = trace.reviews_of_product(product.id);
    if (review_ids.size() < min_reviews) continue;
    ProductSummary s;
    s.id = product.id;
    s.reviews = review_ids.size();
    s.true_quality = product.true_quality;
    double malicious = 0.0;
    for (const ReviewId rid : review_ids) {
      const Review& r = trace.review(rid);
      s.mean_score += r.score;
      s.mean_upvotes += r.upvotes;
      if (trace.worker(r.worker).true_class != WorkerClass::kHonest) {
        malicious += 1.0;
      }
    }
    const double n = static_cast<double>(review_ids.size());
    s.mean_score /= n;
    s.mean_upvotes /= n;
    s.score_inflation = s.mean_score - s.true_quality;
    s.malicious_share = malicious / n;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const ProductSummary& a, const ProductSummary& b) {
              if (a.reviews != b.reviews) return a.reviews > b.reviews;
              return a.id < b.id;
            });
  return out;
}

std::vector<ProductSummary> most_inflated_products(const ReviewTrace& trace,
                                                   std::size_t top,
                                                   std::size_t min_reviews) {
  std::vector<ProductSummary> all = product_summaries(trace, min_reviews);
  std::sort(all.begin(), all.end(),
            [](const ProductSummary& a, const ProductSummary& b) {
              if (a.score_inflation != b.score_inflation) {
                return a.score_inflation > b.score_inflation;
              }
              return a.id < b.id;
            });
  if (all.size() > top) all.resize(top);
  return all;
}

std::vector<ReviewerSummary> reviewer_summaries(const ReviewTrace& trace,
                                                std::size_t min_reviews) {
  CCD_CHECK_MSG(trace.indexes_built(), "analytics requires trace indexes");
  std::vector<ReviewerSummary> out;
  for (const Worker& worker : trace.workers()) {
    const auto& review_ids = trace.reviews_of_worker(worker.id);
    if (review_ids.size() < min_reviews) continue;
    ReviewerSummary s;
    s.id = worker.id;
    s.true_class = worker.true_class;
    s.reviews = review_ids.size();
    for (const ReviewId rid : review_ids) {
      const Review& r = trace.review(rid);
      s.mean_upvotes += r.upvotes;
      s.mean_score += r.score;
      s.mean_length += r.length_chars;
    }
    const double n = static_cast<double>(review_ids.size());
    s.mean_upvotes /= n;
    s.mean_score /= n;
    s.mean_length /= n;
    s.distinct_products = trace.products_of_worker(worker.id).size();
    s.repeat_ratio = n / static_cast<double>(s.distinct_products);
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const ReviewerSummary& a, const ReviewerSummary& b) {
              if (a.reviews != b.reviews) return a.reviews > b.reviews;
              return a.id < b.id;
            });
  return out;
}

TraceDistributions trace_distributions(const ReviewTrace& trace) {
  CCD_CHECK_MSG(trace.indexes_built(), "analytics requires trace indexes");
  std::vector<double> per_worker;
  per_worker.reserve(trace.workers().size());
  for (const Worker& w : trace.workers()) {
    per_worker.push_back(
        static_cast<double>(trace.reviews_of_worker(w.id).size()));
  }
  std::vector<double> upvotes;
  std::vector<double> scores;
  std::vector<double> lengths;
  upvotes.reserve(trace.reviews().size());
  for (const Review& r : trace.reviews()) {
    upvotes.push_back(r.upvotes);
    scores.push_back(r.score);
    lengths.push_back(r.length_chars);
  }
  std::vector<double> per_product;
  per_product.reserve(trace.products().size());
  for (const Product& p : trace.products()) {
    per_product.push_back(
        static_cast<double>(trace.reviews_of_product(p.id).size()));
  }

  TraceDistributions d;
  d.reviews_per_worker = util::summarize(per_worker);
  d.upvotes_per_review = util::summarize(upvotes);
  d.score_per_review = util::summarize(scores);
  d.length_per_review = util::summarize(lengths);
  d.reviews_per_product = util::summarize(per_product);
  return d;
}

std::string render_distributions(const TraceDistributions& d) {
  const auto line = [](const char* name, const util::Summary& s) {
    std::ostringstream os;
    os << name << ": mean " << util::format_double(s.mean, 2) << ", p5 "
       << util::format_double(s.p5, 2) << ", median "
       << util::format_double(s.median, 2) << ", p95 "
       << util::format_double(s.p95, 2) << ", max "
       << util::format_double(s.max, 2) << '\n';
    return os.str();
  };
  std::string out;
  out += line("reviews/worker ", d.reviews_per_worker);
  out += line("upvotes/review ", d.upvotes_per_review);
  out += line("score/review   ", d.score_per_review);
  out += line("length/review  ", d.length_per_review);
  out += line("reviews/product", d.reviews_per_product);
  return out;
}

}  // namespace ccd::data
