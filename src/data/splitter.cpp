#include "data/splitter.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccd::data {
namespace {

/// Copy the subset of `trace` induced by the chosen workers (all products
/// retained, ids re-densified).
ReviewTrace project(const ReviewTrace& trace,
                    const std::vector<WorkerId>& chosen) {
  ReviewTrace out;
  std::vector<std::int64_t> new_id(trace.workers().size(), -1);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    Worker w = trace.worker(chosen[i]);
    w.id = static_cast<WorkerId>(i);
    new_id[chosen[i]] = static_cast<std::int64_t>(i);
    out.add_worker(w);
  }
  for (const Product& p : trace.products()) out.add_product(p);
  ReviewId next_review = 0;
  for (const Review& r : trace.reviews()) {
    if (new_id[r.worker] < 0) continue;
    Review copy = r;
    copy.id = next_review++;
    copy.worker = static_cast<WorkerId>(new_id[r.worker]);
    out.add_review(copy);
  }
  out.build_indexes();
  return out;
}

}  // namespace

TraceSplit split_trace(const ReviewTrace& trace, double train_fraction,
                       std::uint64_t seed) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw ConfigError("train_fraction must be in (0, 1)");
  }
  CCD_CHECK_MSG(trace.workers().size() >= 2,
                "need at least two workers to split");

  util::Rng rng(seed);
  // Stratify by ground-truth class so both splits keep the population mix.
  // Collusive communities travel whole: splitting a ring across train/test
  // would break the same-target clustering semantics in both halves.
  std::vector<WorkerId> honest;
  std::vector<WorkerId> ncm;
  std::vector<std::vector<WorkerId>> communities;
  {
    std::vector<std::int32_t> community_index;
    for (const Worker& w : trace.workers()) {
      switch (w.true_class) {
        case WorkerClass::kHonest: honest.push_back(w.id); break;
        case WorkerClass::kNonCollusiveMalicious: ncm.push_back(w.id); break;
        case WorkerClass::kCollusiveMalicious: {
          auto it = std::find(community_index.begin(), community_index.end(),
                              w.true_community);
          if (it == community_index.end()) {
            community_index.push_back(w.true_community);
            communities.emplace_back();
            it = community_index.end() - 1;
          }
          communities[static_cast<std::size_t>(
                          it - community_index.begin())]
              .push_back(w.id);
          break;
        }
      }
    }
  }

  std::vector<WorkerId> train_ids;
  std::vector<WorkerId> test_ids;
  const auto deal = [&](std::vector<WorkerId>& group) {
    rng.shuffle(group);
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(group.size()) + 0.5);
    for (std::size_t i = 0; i < group.size(); ++i) {
      (i < cut ? train_ids : test_ids).push_back(group[i]);
    }
  };
  deal(honest);
  deal(ncm);
  rng.shuffle(communities);
  const auto community_cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(communities.size()) + 0.5);
  for (std::size_t c = 0; c < communities.size(); ++c) {
    auto& dest = c < community_cut ? train_ids : test_ids;
    dest.insert(dest.end(), communities[c].begin(), communities[c].end());
  }

  CCD_CHECK_MSG(!train_ids.empty() && !test_ids.empty(),
                "split produced an empty side; adjust train_fraction");
  std::sort(train_ids.begin(), train_ids.end());
  std::sort(test_ids.begin(), test_ids.end());

  TraceSplit split;
  split.train = project(trace, train_ids);
  split.test = project(trace, test_ids);
  split.train_original_ids = std::move(train_ids);
  split.test_original_ids = std::move(test_ids);
  return split;
}

}  // namespace ccd::data
