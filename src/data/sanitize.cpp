#include "data/sanitize.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace ccd::data {

std::string SanitizeReport::to_string() const {
  std::ostringstream os;
  os << "sanitize: kept " << input_workers - quarantined_workers() << '/'
     << input_workers << " workers, "
     << input_products - quarantined_products() << '/' << input_products
     << " products, " << input_reviews - quarantined_reviews() << '/'
     << input_reviews << " reviews";
  os << "; quarantined=" << total_quarantined()
     << " (dup_worker=" << duplicate_worker_ids
     << " dup_product=" << duplicate_product_ids
     << " bad_quality=" << non_finite_quality
     << " bad_feedback=" << non_finite_feedback + negative_feedback
     << " bad_score=" << non_finite_score
     << " bad_round=" << out_of_range_round
     << " dangling=" << dangling_reviews << ')';
  os << " repaired=" << total_repaired()
     << " (remapped_ids=" << remapped_worker_ids
     << " skill=" << repaired_skill
     << " labels=" << repaired_class_labels
     << " clamped=" << clamped_quality + clamped_scores
     << " renumbered_rounds=" << renumbered_rounds << ')';
  if (unparseable_rows > 0) os << " unparseable_rows=" << unparseable_rows;
  if (aborted_files > 0) {
    os << " aborted_files=" << aborted_files
       << " (rows_kept_before_abort=" << rows_before_abort << ')';
  }
  return os.str();
}

SanitizedTrace sanitize_trace(const std::vector<Worker>& workers,
                              const std::vector<Product>& products,
                              const std::vector<ReviewRecord>& reviews,
                              const SanitizeConfig& config) {
  CCD_CHECK_MSG(config.min_score <= config.max_score,
                "sanitize score range is inverted");
  CCD_CHECK_MSG(config.min_score >= 1.0 && config.max_score <= 5.0,
                "sanitize score range must stay within the schema's [1, 5]");
  SanitizedTrace out;
  SanitizeReport& report = out.report;
  report.input_workers = workers.size();
  report.input_products = products.size();
  report.input_reviews = reviews.size();

  // ---- Workers: dedup, densify, repair ----------------------------------
  std::unordered_map<WorkerId, WorkerId> worker_id_map;
  worker_id_map.reserve(workers.size());
  for (const Worker& in : workers) {
    if (worker_id_map.count(in.id) > 0) {
      ++report.duplicate_worker_ids;
      continue;
    }
    Worker w = in;
    const WorkerId dense = static_cast<WorkerId>(worker_id_map.size());
    if (w.id != dense) ++report.remapped_worker_ids;
    worker_id_map.emplace(w.id, dense);
    w.id = dense;
    if (!std::isfinite(w.skill)) {
      w.skill = 1.0;
      ++report.repaired_skill;
    }
    if (w.true_class == WorkerClass::kCollusiveMalicious &&
        w.true_community == kNoCommunity) {
      w.true_class = WorkerClass::kNonCollusiveMalicious;
      ++report.repaired_class_labels;
    } else if (w.true_class != WorkerClass::kCollusiveMalicious &&
               w.true_community != kNoCommunity) {
      w.true_community = kNoCommunity;
      ++report.repaired_class_labels;
    }
    out.trace.add_worker(w);
  }

  // ---- Products: dedup, quarantine non-finite, clamp --------------------
  std::unordered_map<ProductId, ProductId> product_id_map;
  product_id_map.reserve(products.size());
  for (const Product& in : products) {
    if (product_id_map.count(in.id) > 0) {
      ++report.duplicate_product_ids;
      continue;
    }
    if (!std::isfinite(in.true_quality)) {
      ++report.non_finite_quality;
      continue;  // id not mapped: its reviews quarantine as dangling
    }
    Product p = in;
    const ProductId dense = static_cast<ProductId>(product_id_map.size());
    product_id_map.emplace(p.id, dense);
    p.id = dense;
    if (p.true_quality < 1.0 || p.true_quality > 5.0) {
      p.true_quality = std::min(5.0, std::max(1.0, p.true_quality));
      ++report.clamped_quality;
    }
    out.trace.add_product(p);
  }

  // ---- Reviews: quarantine, clamp, renumber rounds ----------------------
  std::vector<std::uint32_t> next_round(worker_id_map.size(), 0);
  ReviewId next_review_id = 0;
  for (const ReviewRecord& in : reviews) {
    const auto wit = worker_id_map.find(in.review.worker);
    const auto pit = product_id_map.find(in.review.product);
    if (wit == worker_id_map.end() || pit == product_id_map.end()) {
      ++report.dangling_reviews;
      continue;
    }
    if (!std::isfinite(in.feedback)) {
      ++report.non_finite_feedback;
      continue;
    }
    if (in.feedback < 0.0) {
      ++report.negative_feedback;
      continue;
    }
    if (!std::isfinite(in.review.score)) {
      ++report.non_finite_score;
      continue;
    }
    if (in.review.round > config.max_round) {
      ++report.out_of_range_round;
      continue;
    }
    Review r = in.review;
    r.id = next_review_id++;
    r.worker = wit->second;
    r.product = pit->second;
    r.upvotes = static_cast<std::uint32_t>(std::llround(in.feedback));
    if (r.score < config.min_score || r.score > config.max_score) {
      r.score = std::min(config.max_score, std::max(config.min_score, r.score));
      ++report.clamped_scores;
    }
    const std::uint32_t round = next_round[r.worker]++;
    if (r.round != round) ++report.renumbered_rounds;
    r.round = round;
    out.trace.add_review(r);
  }

  out.trace.build_indexes();
  out.trace.validate();
  return out;
}

SanitizedTrace sanitize_trace(const ReviewTrace& trace,
                              const SanitizeConfig& config) {
  std::vector<ReviewRecord> records;
  records.reserve(trace.reviews().size());
  for (const Review& r : trace.reviews()) {
    records.push_back({r, static_cast<double>(r.upvotes)});
  }
  return sanitize_trace(trace.workers(), trace.products(), records, config);
}

}  // namespace ccd::data
