#include "data/metrics.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ccd::data {

WorkerMetrics::WorkerMetrics(const ReviewTrace& trace, MetricsConfig config)
    : trace_(trace) {
  CCD_CHECK_MSG(trace.indexes_built(),
                "WorkerMetrics requires built trace indexes");
  CCD_CHECK_MSG(config.target_mean_effort > 0.0,
                "target_mean_effort must be positive");

  expertise_.assign(trace.workers().size(), 0.0);
  for (const Worker& w : trace.workers()) {
    const auto& review_ids = trace.reviews_of_worker(w.id);
    if (review_ids.empty()) continue;
    double total = 0.0;
    for (const ReviewId rid : review_ids) {
      total += trace.review(rid).upvotes;
    }
    expertise_[w.id] = total / static_cast<double>(review_ids.size());
  }

  // Normalize expertise x length so the global mean effort is the target.
  util::Accumulator raw;
  for (const Review& r : trace.reviews()) {
    raw.add(expertise_[r.worker] * static_cast<double>(r.length_chars));
  }
  if (raw.count() > 0 && raw.mean() > 0.0) {
    effort_scale_ = config.target_mean_effort / raw.mean();
  }
}

double WorkerMetrics::expertise(WorkerId id) const {
  CCD_CHECK_MSG(id < expertise_.size(), "worker id out of range");
  return expertise_[id];
}

double WorkerMetrics::effort_level(ReviewId id) const {
  const Review& r = trace_.review(id);
  return expertise_[r.worker] * static_cast<double>(r.length_chars) *
         effort_scale_;
}

double WorkerMetrics::feedback(ReviewId id) const {
  return static_cast<double>(trace_.review(id).upvotes);
}

std::vector<EffortSample> WorkerMetrics::samples_of_class(
    WorkerClass cls) const {
  std::vector<EffortSample> out;
  for (const Worker& w : trace_.workers()) {
    if (w.true_class != cls) continue;
    for (const ReviewId rid : trace_.reviews_of_worker(w.id)) {
      out.push_back({w.id, rid, effort_level(rid), feedback(rid)});
    }
  }
  return out;
}

std::vector<EffortSample> WorkerMetrics::samples_of_worker(WorkerId id) const {
  std::vector<EffortSample> out;
  for (const ReviewId rid : trace_.reviews_of_worker(id)) {
    out.push_back({id, rid, effort_level(rid), feedback(rid)});
  }
  return out;
}

double WorkerMetrics::mean_effort_of_worker(WorkerId id) const {
  const auto& review_ids = trace_.reviews_of_worker(id);
  if (review_ids.empty()) return 0.0;
  double total = 0.0;
  for (const ReviewId rid : review_ids) total += effort_level(rid);
  return total / static_cast<double>(review_ids.size());
}

double WorkerMetrics::mean_feedback_of_worker(WorkerId id) const {
  const auto& review_ids = trace_.reviews_of_worker(id);
  if (review_ids.empty()) return 0.0;
  double total = 0.0;
  for (const ReviewId rid : review_ids) total += feedback(rid);
  return total / static_cast<double>(review_ids.size());
}

}  // namespace ccd::data
