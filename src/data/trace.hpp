// ReviewTrace: the in-memory dataset (workers, products, reviews) plus
// indexes and summary statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/schema.hpp"

namespace ccd::data {

struct TraceStats {
  std::size_t workers = 0;
  std::size_t products = 0;
  std::size_t reviews = 0;
  std::size_t honest_workers = 0;
  std::size_t ncm_workers = 0;
  std::size_t cm_workers = 0;
  std::size_t true_communities = 0;
  double mean_reviews_per_worker = 0.0;
  double mean_upvotes = 0.0;
  double mean_length = 0.0;

  std::string to_string() const;
};

class ReviewTrace {
 public:
  ReviewTrace() = default;

  /// Appends; ids must equal the current container size (dense ids).
  void add_worker(Worker worker);
  void add_product(Product product);
  void add_review(Review review);

  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Product>& products() const { return products_; }
  const std::vector<Review>& reviews() const { return reviews_; }

  const Worker& worker(WorkerId id) const;
  const Product& product(ProductId id) const;
  const Review& review(ReviewId id) const;

  /// Review ids authored by `id` (chronological). Requires build_indexes().
  const std::vector<ReviewId>& reviews_of_worker(WorkerId id) const;

  /// Review ids on `id`. Requires build_indexes().
  const std::vector<ReviewId>& reviews_of_product(ProductId id) const;

  /// Distinct product ids reviewed by `id`. Requires build_indexes().
  std::vector<ProductId> products_of_worker(WorkerId id) const;

  /// (Re)build the per-worker / per-product indexes; call after loading.
  void build_indexes();
  bool indexes_built() const { return indexes_built_; }

  /// Consistency check: dense ids, references in range, rounds sequential
  /// per worker. Throws ccd::DataError describing the first violation.
  void validate() const;

  TraceStats stats() const;

 private:
  std::vector<Worker> workers_;
  std::vector<Product> products_;
  std::vector<Review> reviews_;
  std::vector<std::vector<ReviewId>> by_worker_;
  std::vector<std::vector<ReviewId>> by_product_;
  bool indexes_built_ = false;
};

}  // namespace ccd::data
