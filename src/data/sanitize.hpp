// Trace sanitization: quarantine or repair dirty records before they reach
// the pipeline.
//
// Real crowdsourcing traces are dirty — non-finite feedback, negative
// upvotes, duplicate ids, rounds from a corrupted export. The strict path
// (load_trace / ReviewTrace::validate) rejects such input outright; this
// pass instead rebuilds a clean trace, quarantining what cannot be
// repaired and counting everything it touched, so a fleet solve can absorb
// a few bad records instead of aborting on the first one.
//
// Per-record rules:
//  * workers:  duplicate ids -> keep the first, quarantine the rest;
//              non-dense ids -> remapped densely (order preserved);
//              non-finite skill -> repaired to 1.0;
//              inconsistent class/community labels -> repaired (a CM worker
//              without a community becomes NCM, a non-CM community label is
//              cleared).
//  * products: duplicate ids -> keep first; non-finite quality ->
//              quarantined (its reviews become dangling and are quarantined
//              too); out-of-range quality -> clamped into [1, 5].
//  * reviews:  non-finite or negative feedback -> quarantined;
//              non-finite score -> quarantined; out-of-range score ->
//              clamped; dangling worker/product refs -> quarantined;
//              round > max_round -> quarantined; surviving rounds are
//              renumbered sequentially per worker (counted when changed).
//
// The output trace always passes ReviewTrace::validate().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/trace.hpp"

namespace ccd::data {

struct SanitizeConfig {
  double min_score = 1.0;
  double max_score = 5.0;
  /// Rounds above this are treated as corrupted (e.g. negative values that
  /// wrapped around on export) and quarantined.
  std::uint32_t max_round = 1u << 20;
};

/// One unvalidated review observation: the raw feedback rides alongside so
/// negative or non-finite values (unrepresentable in Review::upvotes) can
/// still reach the sanitizer from a lenient loader.
struct ReviewRecord {
  Review review;
  double feedback = 0.0;
};

struct SanitizeReport {
  std::size_t input_workers = 0;
  std::size_t input_products = 0;
  std::size_t input_reviews = 0;

  // Quarantined (dropped) records.
  std::size_t duplicate_worker_ids = 0;
  std::size_t duplicate_product_ids = 0;
  std::size_t non_finite_quality = 0;
  std::size_t non_finite_feedback = 0;
  std::size_t negative_feedback = 0;
  std::size_t non_finite_score = 0;
  std::size_t out_of_range_round = 0;
  std::size_t dangling_reviews = 0;  ///< refs to missing/quarantined rows

  // Repaired (kept) records.
  std::size_t remapped_worker_ids = 0;
  std::size_t repaired_skill = 0;
  std::size_t repaired_class_labels = 0;
  std::size_t clamped_quality = 0;
  std::size_t clamped_scores = 0;
  std::size_t renumbered_rounds = 0;

  /// Rows a lenient loader could not parse at all (filled by
  /// load_trace_sanitized, not by sanitize_trace).
  std::size_t unparseable_rows = 0;

  /// Files a lenient loader had to abandon mid-read (e.g. malformed CSV
  /// framing after some rows parsed). The rows read before each abort are
  /// kept and counted in rows_before_abort, so a partial read never
  /// masquerades as a complete one.
  std::size_t aborted_files = 0;
  std::size_t rows_before_abort = 0;

  std::size_t quarantined_workers() const { return duplicate_worker_ids; }
  std::size_t quarantined_products() const {
    return duplicate_product_ids + non_finite_quality;
  }
  std::size_t quarantined_reviews() const {
    return non_finite_feedback + negative_feedback + non_finite_score +
           out_of_range_round + dangling_reviews;
  }
  std::size_t total_quarantined() const {
    return quarantined_workers() + quarantined_products() +
           quarantined_reviews();
  }
  std::size_t total_repaired() const {
    return remapped_worker_ids + repaired_skill + repaired_class_labels +
           clamped_quality + clamped_scores + renumbered_rounds;
  }
  /// True when the input needed no quarantine, repair, row skipping, or
  /// mid-file abort.
  bool clean() const {
    return total_quarantined() == 0 && total_repaired() == 0 &&
           unparseable_rows == 0 && aborted_files == 0;
  }

  std::string to_string() const;
};

struct SanitizedTrace {
  ReviewTrace trace;
  SanitizeReport report;
};

/// Sanitize raw (unvalidated) records into a clean trace. Clean input
/// passes through bit-for-bit (modulo dense renumbering of review ids,
/// which preserves input order).
SanitizedTrace sanitize_trace(const std::vector<Worker>& workers,
                              const std::vector<Product>& products,
                              const std::vector<ReviewRecord>& reviews,
                              const SanitizeConfig& config = {});

/// Convenience overload for an already-built trace (feedback taken from
/// Review::upvotes). Used by the pipeline's sanitize stage to quarantine
/// records that slipped past validate() — notably NaN scores, which pass
/// range comparisons.
SanitizedTrace sanitize_trace(const ReviewTrace& trace,
                              const SanitizeConfig& config = {});

}  // namespace ccd::data
