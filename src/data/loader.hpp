// Trace persistence as a trio of CSV files (workers/products/reviews).
//
// Lets experiments generate a trace once and reuse it, and lets users run
// the pipeline on their own data by exporting to this simple format.
//
// Two loading modes:
//  * load_trace — strict: any malformed row (bad header, ragged row,
//    unparseable cell, non-finite score, negative feedback/length) throws
//    ccd::DataError naming the file and line.
//  * load_trace_sanitized — lenient: unparseable rows are skipped (counted
//    in SanitizeReport::unparseable_rows) and everything else is routed
//    through data::sanitize_trace, which quarantines or repairs dirty
//    records instead of aborting. A file whose framing breaks mid-read
//    (e.g. an unterminated quote) is abandoned at that point: the rows
//    already parsed are kept and the abort is recorded in
//    SanitizeReport::aborted_files / rows_before_abort, so a partial read
//    never passes for a complete one.
//
// The *_retrying variants wrap the load in util::with_retry (exponential
// backoff + deterministic jitter, `ccd.io.*` metrics) for flaky storage;
// the fault-injection site "io.load_trace" is keyed by the attempt index.
#pragma once

#include <string>

#include "data/sanitize.hpp"
#include "data/trace.hpp"
#include "util/retry.hpp"

namespace ccd::data {

/// Writes `<prefix>.workers.csv`, `<prefix>.products.csv`,
/// `<prefix>.reviews.csv` (each with a header row).
void save_trace(const ReviewTrace& trace, const std::string& prefix);

/// Loads a trace saved by save_trace; builds indexes and validates.
/// Throws ccd::DataError on malformed input, naming the offending row.
ReviewTrace load_trace(const std::string& prefix);

/// Lenient load: parse what can be parsed, sanitize the rest. Only missing
/// files and bad headers still throw (there is nothing to salvage).
SanitizedTrace load_trace_sanitized(const std::string& prefix,
                                    const SanitizeConfig& config = {});

/// load_trace / load_trace_sanitized with bounded, backed-off retries for
/// transient I/O failures (see util/retry.hpp).
ReviewTrace load_trace_retrying(const std::string& prefix,
                                const util::RetryPolicy& retry = {});
SanitizedTrace load_trace_sanitized_retrying(const std::string& prefix,
                                             const SanitizeConfig& config = {},
                                             const util::RetryPolicy& retry = {});

}  // namespace ccd::data
