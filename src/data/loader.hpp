// Trace persistence as a trio of CSV files (workers/products/reviews).
//
// Lets experiments generate a trace once and reuse it, and lets users run
// the pipeline on their own data by exporting to this simple format.
#pragma once

#include <string>

#include "data/trace.hpp"

namespace ccd::data {

/// Writes `<prefix>.workers.csv`, `<prefix>.products.csv`,
/// `<prefix>.reviews.csv` (each with a header row).
void save_trace(const ReviewTrace& trace, const std::string& prefix);

/// Loads a trace saved by save_trace; builds indexes and validates.
/// Throws ccd::DataError on malformed input.
ReviewTrace load_trace(const std::string& prefix);

}  // namespace ccd::data
