// Review-trace schema mirroring the Amazon dataset of Fayazi et al. [13]
// that the paper evaluates on: workers (reviewers), products, and reviews
// with helpfulness upvotes plus ground-truth maliciousness labels.
#pragma once

#include <cstdint>
#include <string>

namespace ccd::data {

using WorkerId = std::uint32_t;
using ProductId = std::uint32_t;
using ReviewId = std::uint32_t;

constexpr std::int32_t kNoCommunity = -1;

/// Ground-truth worker population class (paper §II).
enum class WorkerClass : std::uint8_t {
  kHonest = 0,
  kNonCollusiveMalicious = 1,  ///< "NCM" — biased, working alone
  kCollusiveMalicious = 2,     ///< "CM" — biased, shares targets/upvotes
};

const char* to_string(WorkerClass c);

/// Parse "honest" / "ncm" / "cm" (as written by the loader).
WorkerClass worker_class_from_string(const std::string& s);

struct Worker {
  WorkerId id = 0;
  WorkerClass true_class = WorkerClass::kHonest;
  /// Ground-truth collusive community index; kNoCommunity for non-CM.
  std::int32_t true_community = kNoCommunity;
  /// Latent ability; drives review quality/length in the generator. Not
  /// observable by the requester (detectors must estimate behaviour).
  double skill = 1.0;
  /// Platform "expert reviewer" badge (a minority of honest workers).
  bool expert_badge = false;
};

struct Product {
  ProductId id = 0;
  /// Latent true quality in [1, 5]; expert consensus approximates this.
  double true_quality = 3.0;
};

struct Review {
  ReviewId id = 0;
  WorkerId worker = 0;
  ProductId product = 0;
  /// Round index within the worker's history (0-based, chronological).
  std::uint32_t round = 0;
  /// Star rating in [1, 5].
  double score = 3.0;
  /// Review body length in characters (paper's effort-proxy ingredient).
  std::uint32_t length_chars = 0;
  /// Helpfulness upvotes from other users (the paper's "feedback" q).
  std::uint32_t upvotes = 0;
  /// Whether the purchase was verified.
  bool verified = true;
};

}  // namespace ccd::data
