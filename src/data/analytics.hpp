// Trace analytics: descriptive views of a review trace used by ccdctl's
// inspect command, the examples, and exploratory analysis — per-product
// summaries, reviewer leaderboards, and suspiciousness signals that don't
// need the full detector.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/trace.hpp"
#include "util/stats.hpp"

namespace ccd::data {

struct ProductSummary {
  ProductId id = 0;
  std::size_t reviews = 0;
  double mean_score = 0.0;
  double mean_upvotes = 0.0;
  double true_quality = 0.0;
  /// Mean score minus true quality: large positive values flag promotion.
  double score_inflation = 0.0;
  /// Share of reviews from ground-truth malicious workers (when labels are
  /// available; 0 otherwise).
  double malicious_share = 0.0;
};

/// Per-product summaries for products with at least `min_reviews` reviews,
/// sorted by descending review count.
std::vector<ProductSummary> product_summaries(const ReviewTrace& trace,
                                              std::size_t min_reviews = 1);

/// The `top` products by score inflation (most promoted first); candidates
/// for manual audit.
std::vector<ProductSummary> most_inflated_products(const ReviewTrace& trace,
                                                   std::size_t top = 10,
                                                   std::size_t min_reviews = 3);

struct ReviewerSummary {
  WorkerId id = 0;
  WorkerClass true_class = WorkerClass::kHonest;
  std::size_t reviews = 0;
  double mean_upvotes = 0.0;
  double mean_score = 0.0;
  double mean_length = 0.0;
  std::size_t distinct_products = 0;
  /// Reviews per distinct product; > 1 means repeat reviewing (a spam
  /// signature in review markets).
  double repeat_ratio = 1.0;
};

/// Summaries for all reviewers with at least `min_reviews`, sorted by
/// descending review count.
std::vector<ReviewerSummary> reviewer_summaries(const ReviewTrace& trace,
                                                std::size_t min_reviews = 1);

/// Overall distributional stats for quick sanity checks.
struct TraceDistributions {
  util::Summary reviews_per_worker;
  util::Summary upvotes_per_review;
  util::Summary score_per_review;
  util::Summary length_per_review;
  util::Summary reviews_per_product;
};

TraceDistributions trace_distributions(const ReviewTrace& trace);

/// Multi-line human-readable digest of the distributions.
std::string render_distributions(const TraceDistributions& d);

}  // namespace ccd::data
