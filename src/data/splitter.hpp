// Train/test splitting of review traces, for honest evaluation of the
// detection stack: fit thresholds and estimators on one split, measure
// precision/recall on the other.
//
// Splitting is by *worker*: all of a worker's reviews travel together (the
// detector's unit of decision is the worker), and products are shared so
// expert consensus remains comparable across splits. Ids are re-densified
// per split; the mapping back to the original ids is returned.
#pragma once

#include <cstdint>
#include <vector>

#include "data/trace.hpp"

namespace ccd::data {

struct TraceSplit {
  ReviewTrace train;
  ReviewTrace test;
  /// Original worker id for each train/test worker id.
  std::vector<WorkerId> train_original_ids;
  std::vector<WorkerId> test_original_ids;
};

/// Split workers into train (`train_fraction`) and test, stratified by
/// ground-truth class so both splits keep the honest/NCM/CM mix.
/// `train_fraction` in (0, 1); throws ccd::ConfigError otherwise.
TraceSplit split_trace(const ReviewTrace& trace, double train_fraction,
                       std::uint64_t seed);

}  // namespace ccd::data
