#include "data/trace.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace ccd::data {

const char* to_string(WorkerClass c) {
  switch (c) {
    case WorkerClass::kHonest: return "honest";
    case WorkerClass::kNonCollusiveMalicious: return "ncm";
    case WorkerClass::kCollusiveMalicious: return "cm";
  }
  return "?";
}

WorkerClass worker_class_from_string(const std::string& s) {
  const std::string t = util::to_lower(util::trim(s));
  if (t == "honest") return WorkerClass::kHonest;
  if (t == "ncm") return WorkerClass::kNonCollusiveMalicious;
  if (t == "cm") return WorkerClass::kCollusiveMalicious;
  throw DataError("unknown worker class: '" + s + "'");
}

std::string TraceStats::to_string() const {
  std::ostringstream os;
  os << "workers=" << workers << " (honest=" << honest_workers
     << ", ncm=" << ncm_workers << ", cm=" << cm_workers
     << ", communities=" << true_communities << ") products=" << products
     << " reviews=" << reviews
     << " reviews/worker=" << util::format_double(mean_reviews_per_worker, 2)
     << " mean_upvotes=" << util::format_double(mean_upvotes, 2)
     << " mean_length=" << util::format_double(mean_length, 1);
  return os.str();
}

void ReviewTrace::add_worker(Worker worker) {
  CCD_CHECK_MSG(worker.id == workers_.size(),
                "worker ids must be dense and in order");
  workers_.push_back(worker);
  indexes_built_ = false;
}

void ReviewTrace::add_product(Product product) {
  CCD_CHECK_MSG(product.id == products_.size(),
                "product ids must be dense and in order");
  products_.push_back(product);
  indexes_built_ = false;
}

void ReviewTrace::add_review(Review review) {
  CCD_CHECK_MSG(review.id == reviews_.size(),
                "review ids must be dense and in order");
  reviews_.push_back(review);
  indexes_built_ = false;
}

const Worker& ReviewTrace::worker(WorkerId id) const {
  CCD_CHECK_MSG(id < workers_.size(), "worker id out of range");
  return workers_[id];
}

const Product& ReviewTrace::product(ProductId id) const {
  CCD_CHECK_MSG(id < products_.size(), "product id out of range");
  return products_[id];
}

const Review& ReviewTrace::review(ReviewId id) const {
  CCD_CHECK_MSG(id < reviews_.size(), "review id out of range");
  return reviews_[id];
}

const std::vector<ReviewId>& ReviewTrace::reviews_of_worker(WorkerId id) const {
  CCD_CHECK_MSG(indexes_built_, "call build_indexes() first");
  CCD_CHECK_MSG(id < by_worker_.size(), "worker id out of range");
  return by_worker_[id];
}

const std::vector<ReviewId>& ReviewTrace::reviews_of_product(
    ProductId id) const {
  CCD_CHECK_MSG(indexes_built_, "call build_indexes() first");
  CCD_CHECK_MSG(id < by_product_.size(), "product id out of range");
  return by_product_[id];
}

std::vector<ProductId> ReviewTrace::products_of_worker(WorkerId id) const {
  std::set<ProductId> seen;
  for (const ReviewId rid : reviews_of_worker(id)) {
    seen.insert(reviews_[rid].product);
  }
  return {seen.begin(), seen.end()};
}

void ReviewTrace::build_indexes() {
  by_worker_.assign(workers_.size(), {});
  by_product_.assign(products_.size(), {});
  for (const Review& r : reviews_) {
    CCD_CHECK_MSG(r.worker < workers_.size(), "review references bad worker");
    CCD_CHECK_MSG(r.product < products_.size(),
                  "review references bad product");
    by_worker_[r.worker].push_back(r.id);
    by_product_[r.product].push_back(r.id);
  }
  indexes_built_ = true;
}

void ReviewTrace::validate() const {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = workers_[i];
    if (w.id != i) throw DataError("worker id not dense at index " + std::to_string(i));
    if (!std::isfinite(w.skill)) {
      throw DataError("non-finite skill for worker " + std::to_string(i));
    }
    if (w.true_class == WorkerClass::kCollusiveMalicious &&
        w.true_community == kNoCommunity) {
      throw DataError("CM worker " + std::to_string(i) + " has no community");
    }
    if (w.true_class != WorkerClass::kCollusiveMalicious &&
        w.true_community != kNoCommunity) {
      throw DataError("non-CM worker " + std::to_string(i) +
                      " has a community label");
    }
  }
  for (std::size_t i = 0; i < products_.size(); ++i) {
    if (products_[i].id != i) {
      throw DataError("product id not dense at index " + std::to_string(i));
    }
    if (!std::isfinite(products_[i].true_quality) ||
        products_[i].true_quality < 1.0 || products_[i].true_quality > 5.0) {
      throw DataError("product quality outside [1,5] at " + std::to_string(i));
    }
  }
  std::vector<std::uint32_t> next_round(workers_.size(), 0);
  for (std::size_t i = 0; i < reviews_.size(); ++i) {
    const Review& r = reviews_[i];
    if (r.id != i) throw DataError("review id not dense at index " + std::to_string(i));
    if (r.worker >= workers_.size()) throw DataError("review worker out of range");
    if (r.product >= products_.size()) throw DataError("review product out of range");
    if (!std::isfinite(r.score) || r.score < 1.0 || r.score > 5.0) {
      throw DataError("review score outside [1,5] at " + std::to_string(i));
    }
    if (r.round != next_round[r.worker]) {
      throw DataError("rounds not sequential for worker " +
                      std::to_string(r.worker));
    }
    ++next_round[r.worker];
  }
}

TraceStats ReviewTrace::stats() const {
  TraceStats s;
  s.workers = workers_.size();
  s.products = products_.size();
  s.reviews = reviews_.size();
  std::set<std::int32_t> communities;
  for (const Worker& w : workers_) {
    switch (w.true_class) {
      case WorkerClass::kHonest: ++s.honest_workers; break;
      case WorkerClass::kNonCollusiveMalicious: ++s.ncm_workers; break;
      case WorkerClass::kCollusiveMalicious:
        ++s.cm_workers;
        communities.insert(w.true_community);
        break;
    }
  }
  s.true_communities = communities.size();
  if (!workers_.empty()) {
    s.mean_reviews_per_worker =
        static_cast<double>(reviews_.size()) / static_cast<double>(workers_.size());
  }
  double upvotes = 0.0;
  double length = 0.0;
  for (const Review& r : reviews_) {
    upvotes += r.upvotes;
    length += r.length_chars;
  }
  if (!reviews_.empty()) {
    s.mean_upvotes = upvotes / static_cast<double>(reviews_.size());
    s.mean_length = length / static_cast<double>(reviews_.size());
  }
  return s;
}

}  // namespace ccd::data
