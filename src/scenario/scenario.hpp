// Adversarial scenario engine (ROADMAP item 5).
//
// The paper's own threat model (§III: NCM workers plus fixed collusion
// communities) is the narrowest interesting adversary. This module
// composes richer, config-driven adversary behaviours on top of the data
// generator and the StackelbergSimulator, so the designer can be scored
// systematically against them:
//
//  * Sybil swarms — many cheap identities sharing one effort curve and
//    one private target pool, pumping each other's feedback.
//  * Adaptive colluders — communities that re-target in response to the
//    previous round's contracts: every round they concentrate their
//    upvote boost on the member whose posted contract saturates highest.
//  * Strategic misreporters — biased workers that mask their accuracy
//    signal only when the Theorem 4.1 bound leaves slack between what the
//    posted contract can extract and what it guarantees, staying under
//    the suspicion threshold while the mask is profitable.
//  * Churned populations — Poisson worker arrival/departure windows, in
//    the spirit of non-stationary crowdsourcing markets.
//
// Everything is deterministic by construction: every behaviour draws only
// from the simulator's own checkpointed RNG (via core::RoundHook), so a
// scenario run is bitwise-reproducible from its seed, independent of
// thread count, and checkpoint/resume-safe. The hook itself is stateless
// across rounds — its per-round decisions are pure functions of the
// posted contracts and the requester's (checkpointed) estimates — so
// re-attaching a fresh hook after a resume reproduces the uninterrupted
// run exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "contract/contract.hpp"
#include "core/pipeline.hpp"
#include "core/stackelberg.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace ccd::scenario {

/// Designer policy a scenario is run against (the matrix's columns).
enum class Policy {
  kDynamic,  ///< the paper's method: BiP redesign every round
  kStatic,   ///< BiP designed once at round 0, never refreshed
  kFixed,    ///< flat fixed-payment contract for everyone, every round
  kExclude,  ///< dynamic + hard zero contract for suspected workers
  /// Model-free online learners (ccd::policy backends) scored under every
  /// adversary. They learn the contract space from scratch inside the
  /// cell's horizon, so their scores measure exploration robustness, not
  /// converged performance.
  kBandit,       ///< policy::ZoomingBanditPolicy (Ho–Slivkins–Vaughan)
  kPostedPrice,  ///< policy::PostedPricePolicy (Liu–Chen)
};

const char* to_string(Policy policy);
/// Throws ccd::ConfigError on an unknown name.
Policy policy_from_string(const std::string& name);
/// All matrix columns, in enum order.
std::vector<Policy> all_policies();

/// One adversarial scenario: a worker population plus the behaviours
/// layered on it. Parsed from key=value config (see from_params) and
/// runnable from ccdctl, the matrix harness, and the serve ingest path.
struct ScenarioSpec {
  std::string name = "paper";

  /// Population: `workers` total identities, `malicious` of them
  /// adversarial; `community_sizes` partitions part of the malicious
  /// budget into collusion communities (the rest are NCM workers).
  std::size_t workers = 16;
  std::size_t malicious = 6;
  std::vector<std::size_t> community_sizes{};

  /// Sybil swarm: this many extra cheap identities (appended on top of
  /// `workers`) sharing one effort curve and one target pool. 0 disables.
  std::size_t sybil = 0;
  /// Effort-cost coefficient of a sybil identity (cheap: < 1).
  double sybil_beta = 0.4;
  /// Mean mutual feedback boost per swarm partner per round.
  double sybil_boost = 0.8;

  /// Adaptive colluders: communities re-target every round, boosting the
  /// member whose posted contract saturates highest.
  bool adaptive = false;
  /// Mean feedback boost per partner for the targeted member.
  double adaptive_boost = 1.2;

  /// Strategic misreporters: NCM workers mask their accuracy signal on
  /// rounds where the posted contract's Theorem 4.1 bounds leave more
  /// than `misreport_slack` of headroom.
  bool misreport = false;
  double misreport_slack = 0.5;

  /// Poisson churn (0 = static population): arrival round ~
  /// Poisson(churn_arrival_mean), lifetime ~ 1 + Poisson(churn_lifetime_mean).
  double churn_arrival_mean = 0.0;
  double churn_lifetime_mean = 0.0;

  std::size_t rounds = 24;
  std::uint64_t seed = 99;
  core::RequesterConfig requester{};

  /// Knobs of the kFixed policy's flat contract.
  double fixed_payment = 4.0;
  double fixed_effort = 1.0;

  /// Total planted adversarial identities (malicious + sybil).
  std::size_t planted_malicious() const { return malicious + sybil; }
  /// Planted communities (community_sizes plus the swarm, when present).
  std::size_t planted_communities() const {
    return community_sizes.size() + (sybil > 0 ? 1 : 0);
  }

  /// Throws ccd::ConfigError — naming the offending values — on an
  /// inconsistent spec (community sizes overrunning the malicious budget,
  /// malicious budget overrunning the population, ...).
  void validate() const;

  /// Parse overrides from key=value config on top of this spec:
  ///   workers= malicious= communities=2,3 sybil= sybil_beta= sybil_boost=
  ///   adaptive=0/1 adaptive_boost= misreport=0/1 misreport_slack=
  ///   churn_arrival= churn_lifetime= rounds= seed= fixed_payment=
  ///   fixed_effort=
  void apply_params(const util::ParamMap& params);

  /// Named presets: "paper", "sybil", "adaptive", "misreport", "churn",
  /// "mixed". Throws ccd::ConfigError on an unknown name.
  static ScenarioSpec preset(const std::string& name);
  /// The full matrix row catalog (every preset, in canonical order).
  static std::vector<ScenarioSpec> matrix();
};

/// The simulator fleet a spec expands to, with the index sets the hook
/// needs. Built deterministically from the spec's seed (fleet layout:
/// NCM, then community members, then sybils, then honest workers).
struct Fleet {
  std::vector<core::SimWorkerSpec> workers;
  /// Member indices per planted community; the sybil swarm, when present,
  /// is the last entry.
  std::vector<std::vector<std::size_t>> communities;
  std::vector<std::size_t> sybils;
  /// Workers that strategically misreport (the NCM block) when the spec
  /// enables it.
  std::vector<std::size_t> misreporters;
  /// Ground-truth adversary flag per worker.
  std::vector<std::uint8_t> is_malicious;
};

Fleet build_fleet(const ScenarioSpec& spec);

/// Simulator configuration for one matrix cell (kStatic designs once by
/// stretching redesign_every to the horizon). `threads` and the
/// checkpoint knobs come from RunOptions.
struct RunOptions {
  std::size_t threads = 0;
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
};

core::SimConfig sim_config(const ScenarioSpec& spec, Policy policy,
                           const RunOptions& options = {});

/// The RoundHook implementing both the policy overrides (kFixed /
/// kExclude) and the adversary behaviours. All per-round decisions are
/// pure functions of the posted contracts and the requester's estimates,
/// and all draws come from the simulator's RNG — bitwise resume-safe as
/// long as the caller re-attaches a hook after restoring a checkpoint.
class ScenarioHook final : public core::RoundHook {
 public:
  ScenarioHook(const ScenarioSpec& spec, const Fleet& fleet, Policy policy);

  void on_contracts_posted(std::size_t round, bool redesigned,
                           std::vector<contract::Contract>& contracts,
                           const std::vector<double>& est_malicious,
                           util::Rng& rng) override;
  double adjust_feedback(std::size_t round, std::size_t worker,
                         double feedback, util::Rng& rng) override;
  double adjust_accuracy_sample(std::size_t round, std::size_t worker,
                                double sample, util::Rng& rng) override;

 private:
  ScenarioSpec spec_;
  const Fleet* fleet_;
  Policy policy_;
  contract::Contract fixed_contract_;
  /// community index (into fleet_->communities) per worker, or npos.
  std::vector<std::size_t> community_of_;
  /// Recomputed every round from the posted contracts.
  std::vector<std::size_t> boost_target_;   ///< per community
  std::vector<std::uint8_t> mask_now_;      ///< per worker
  std::vector<std::uint8_t> is_sybil_;      ///< per worker
  std::vector<std::uint8_t> misreports_;    ///< per worker
};

/// Scores of one scenario x policy cell.
struct ScenarioScore {
  // Offline (trace/pipeline) half: planted-adversary detection quality.
  double detector_precision = 0.0;
  double detector_recall = 0.0;
  /// Fraction of planted communities fully contained in one detected
  /// community.
  double community_recall = 0.0;
  std::size_t quarantined = 0;
  std::size_t excluded = 0;
  // Online (simulation) half.
  double requester_utility = 0.0;  ///< cumulative over the horizon
  double total_compensation = 0.0;
};

struct ScenarioCell {
  std::string scenario;
  Policy policy = Policy::kDynamic;
  ScenarioScore score;
};

/// Run one cell: generate the spec's trace (sybil swarm, churn windows)
/// through the offline pipeline, then the spec's fleet through the
/// simulator under `policy` with the scenario hook attached. Bitwise
/// deterministic in the spec's seed at any thread count.
ScenarioCell run_cell(const ScenarioSpec& spec, Policy policy,
                      const RunOptions& options = {});

struct MatrixResult {
  std::vector<ScenarioCell> cells;  ///< scenario-major, policy-minor

  /// Per-cell / per-row shape invariants. Returns human-readable
  /// violation messages (empty = all hold):
  ///  * every score is finite,
  ///  * detector recall >= `recall_floor` on planted adversaries,
  ///  * per scenario: dynamic utility >= fixed-contract utility.
  std::vector<std::string> violations(double recall_floor = 0.5) const;

  /// Machine-readable dump (the BENCH_scenarios.json payload).
  std::string to_json() const;
};

/// Run `specs` x all_policies(). The workhorse behind bench_scenarios,
/// ccdctl scenario all, and the matrix regression test.
MatrixResult run_matrix(const std::vector<ScenarioSpec>& specs,
                        const RunOptions& options = {});

/// Closed-loop observation generator for the serve ingest path: replays a
/// scenario's fleet against externally posted contracts, producing the
/// per-round (effort, feedback, accuracy_sample) rows an ingest session
/// consumes. Mirrors the simulator's worker loop (best response, noise,
/// adversary adjustments, churn) with its own seeded RNG, so two feeds
/// with the same spec produce identical rows — the reconciliation basis
/// for the over-the-wire scenario tests.
class IngestFeed {
 public:
  explicit IngestFeed(const ScenarioSpec& spec);

  struct Observation {
    double effort = 0.0;
    double feedback = 0.0;
    double accuracy_sample = 0.0;
  };

  std::size_t worker_count() const { return fleet_.workers.size(); }

  /// Observations for the next round given the currently posted
  /// contracts (size worker_count(), or empty for all-zero contracts).
  std::vector<Observation> round(
      const std::vector<contract::Contract>& contracts);

 private:
  ScenarioSpec spec_;
  Fleet fleet_;
  ScenarioHook hook_;
  util::Rng rng_;
  std::size_t next_round_ = 0;
};

}  // namespace ccd::scenario
