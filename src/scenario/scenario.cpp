#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "contract/bounds.hpp"
#include "contract/worker_response.hpp"
#include "data/generator.hpp"
#include "util/error.hpp"

namespace ccd::scenario {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    try {
      const long long value = std::stoll(token);
      if (value < 2) {
        throw ConfigError("community size '" + token + "' must be >= 2");
      }
      sizes.push_back(static_cast<std::size_t>(value));
    } catch (const std::invalid_argument&) {
      throw ConfigError("cannot parse community size '" + token + "'");
    } catch (const std::out_of_range&) {
      throw ConfigError("community size '" + token + "' out of range");
    }
  }
  return sizes;
}

core::PricingStrategy pipeline_strategy(Policy policy) {
  switch (policy) {
    case Policy::kFixed:
      return core::PricingStrategy::kFixedPayment;
    case Policy::kExclude:
      return core::PricingStrategy::kExcludeMalicious;
    case Policy::kDynamic:
    case Policy::kStatic:
    case Policy::kBandit:
    case Policy::kPostedPrice:
      // The learners replace only the *designer*; the offline detection
      // half (the matrix's precision/recall columns) is policy-agnostic.
      return core::PricingStrategy::kDynamicContract;
  }
  return core::PricingStrategy::kDynamicContract;
}

}  // namespace

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kDynamic:
      return "dynamic";
    case Policy::kStatic:
      return "static";
    case Policy::kFixed:
      return "fixed";
    case Policy::kExclude:
      return "exclude";
    case Policy::kBandit:
      return "bandit";
    case Policy::kPostedPrice:
      return "posted";
  }
  return "?";
}

Policy policy_from_string(const std::string& name) {
  if (name == "dynamic") return Policy::kDynamic;
  if (name == "static") return Policy::kStatic;
  if (name == "fixed") return Policy::kFixed;
  if (name == "exclude") return Policy::kExclude;
  if (name == "bandit") return Policy::kBandit;
  if (name == "posted") return Policy::kPostedPrice;
  throw ConfigError("unknown policy '" + name +
                    "' (expected dynamic|static|fixed|exclude|bandit|posted)");
}

std::vector<Policy> all_policies() {
  return {Policy::kDynamic, Policy::kStatic,      Policy::kFixed,
          Policy::kExclude, Policy::kBandit, Policy::kPostedPrice};
}

void ScenarioSpec::validate() const {
  std::size_t planted = 0;
  for (const std::size_t size : community_sizes) planted += size;
  if (planted > malicious) {
    std::string sizes;
    for (std::size_t i = 0; i < community_sizes.size(); ++i) {
      if (i > 0) sizes += ',';
      sizes += std::to_string(community_sizes[i]);
    }
    throw ConfigError("scenario '" + name + "': community_sizes [" + sizes +
                      "] plant " + std::to_string(planted) +
                      " workers but the malicious budget is only " +
                      std::to_string(malicious));
  }
  if (malicious >= workers) {
    throw ConfigError("scenario '" + name + "': malicious budget " +
                      std::to_string(malicious) +
                      " leaves no honest workers in a population of " +
                      std::to_string(workers));
  }
  for (const std::size_t size : community_sizes) {
    CCD_CHECK_MSG(size >= 2, "scenario '" << name
                                          << "': a community needs >= 2 workers");
  }
  CCD_CHECK_MSG(sybil == 0 || sybil >= 2,
                "scenario '" << name << "': a sybil swarm needs >= 2 identities");
  CCD_CHECK_MSG(sybil_beta > 0.0, "sybil_beta must be > 0");
  CCD_CHECK_MSG(sybil_boost >= 0.0, "sybil_boost must be >= 0");
  CCD_CHECK_MSG(adaptive_boost >= 0.0, "adaptive_boost must be >= 0");
  CCD_CHECK_MSG(misreport_slack >= 0.0, "misreport_slack must be >= 0");
  CCD_CHECK_MSG(churn_arrival_mean >= 0.0, "churn_arrival_mean must be >= 0");
  CCD_CHECK_MSG(churn_lifetime_mean >= 0.0, "churn_lifetime_mean must be >= 0");
  CCD_CHECK_MSG(rounds >= 1, "scenario needs at least one round");
  CCD_CHECK_MSG(fixed_payment >= 0.0, "fixed_payment must be >= 0");
  CCD_CHECK_MSG(fixed_effort > 0.0, "fixed_effort must be > 0");
  requester.validate();
}

void ScenarioSpec::apply_params(const util::ParamMap& params) {
  workers = static_cast<std::size_t>(
      params.get_int("workers", static_cast<long long>(workers)));
  malicious = static_cast<std::size_t>(
      params.get_int("malicious", static_cast<long long>(malicious)));
  if (params.contains("communities")) {
    community_sizes = parse_sizes(params.get_string("communities", ""));
  }
  sybil = static_cast<std::size_t>(
      params.get_int("sybil", static_cast<long long>(sybil)));
  sybil_beta = params.get_double("sybil_beta", sybil_beta);
  sybil_boost = params.get_double("sybil_boost", sybil_boost);
  adaptive = params.get_bool("adaptive", adaptive);
  adaptive_boost = params.get_double("adaptive_boost", adaptive_boost);
  misreport = params.get_bool("misreport", misreport);
  misreport_slack = params.get_double("misreport_slack", misreport_slack);
  churn_arrival_mean = params.get_double("churn_arrival", churn_arrival_mean);
  churn_lifetime_mean = params.get_double("churn_lifetime", churn_lifetime_mean);
  rounds = static_cast<std::size_t>(
      params.get_int("rounds", static_cast<long long>(rounds)));
  seed = static_cast<std::uint64_t>(
      params.get_int("seed", static_cast<long long>(seed)));
  fixed_payment = params.get_double("fixed_payment", fixed_payment);
  fixed_effort = params.get_double("fixed_effort", fixed_effort);
  validate();
}

ScenarioSpec ScenarioSpec::preset(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.workers = 40;
  spec.malicious = 10;
  spec.community_sizes = {2, 3};
  if (name == "paper") {
    // The paper's own threat model: NCM workers + fixed communities.
  } else if (name == "sybil") {
    spec.sybil = 4;
  } else if (name == "adaptive") {
    spec.adaptive = true;
  } else if (name == "misreport") {
    spec.misreport = true;
  } else if (name == "churn") {
    spec.churn_arrival_mean = 4.0;
    spec.churn_lifetime_mean = 12.0;
  } else if (name == "mixed") {
    spec.sybil = 4;
    spec.adaptive = true;
    spec.misreport = true;
    spec.churn_arrival_mean = 3.0;
    spec.churn_lifetime_mean = 14.0;
  } else {
    throw ConfigError(
        "unknown scenario '" + name +
        "' (expected paper|sybil|adaptive|misreport|churn|mixed)");
  }
  spec.validate();
  return spec;
}

std::vector<ScenarioSpec> ScenarioSpec::matrix() {
  std::vector<ScenarioSpec> specs;
  for (const char* name :
       {"paper", "sybil", "adaptive", "misreport", "churn", "mixed"}) {
    specs.push_back(preset(name));
  }
  return specs;
}

Fleet build_fleet(const ScenarioSpec& spec) {
  spec.validate();
  Fleet fleet;
  std::size_t planted = 0;
  for (const std::size_t size : spec.community_sizes) planted += size;
  const std::size_t n_ncm = spec.malicious - planted;
  const std::size_t n_honest = spec.workers - spec.malicious;
  const std::size_t total = spec.workers + spec.sybil;
  fleet.workers.reserve(total);
  fleet.is_malicious.assign(total, 0);

  const auto add = [&](const char* prefix, std::size_t ordinal) {
    core::SimWorkerSpec w;
    w.name = std::string(prefix) + std::to_string(ordinal);
    fleet.workers.push_back(w);
    return fleet.workers.size() - 1;
  };

  for (std::size_t i = 0; i < n_ncm; ++i) {
    const std::size_t idx = add("ncm", i);
    fleet.workers[idx].omega = 0.6;
    fleet.workers[idx].accuracy_distance = 1.7;
    fleet.is_malicious[idx] = 1;
    if (spec.misreport) fleet.misreporters.push_back(idx);
  }
  for (std::size_t c = 0; c < spec.community_sizes.size(); ++c) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < spec.community_sizes[c]; ++i) {
      const std::size_t idx = add("cm", fleet.workers.size());
      fleet.workers[idx].omega = 0.6;
      fleet.workers[idx].accuracy_distance = 1.7;
      fleet.workers[idx].partners = spec.community_sizes[c] - 1;
      fleet.is_malicious[idx] = 1;
      members.push_back(idx);
    }
    fleet.communities.push_back(std::move(members));
  }
  if (spec.sybil > 0) {
    std::vector<std::size_t> swarm;
    for (std::size_t i = 0; i < spec.sybil; ++i) {
      const std::size_t idx = add("sybil", i);
      fleet.workers[idx].beta = spec.sybil_beta;
      fleet.workers[idx].omega = 0.6;
      fleet.workers[idx].accuracy_distance = 1.7;
      fleet.workers[idx].partners = spec.sybil - 1;
      fleet.is_malicious[idx] = 1;
      fleet.sybils.push_back(idx);
      swarm.push_back(idx);
    }
    fleet.communities.push_back(std::move(swarm));
  }
  for (std::size_t i = 0; i < n_honest; ++i) add("honest", i);

  // Churn windows, drawn deterministically from the spec's seed (one
  // arrival + one lifetime per worker, in fleet order).
  if (spec.churn_arrival_mean > 0.0 || spec.churn_lifetime_mean > 0.0) {
    util::Rng rng(spec.seed);
    for (core::SimWorkerSpec& w : fleet.workers) {
      const std::uint64_t arrival = std::min<std::uint64_t>(
          rng.poisson(spec.churn_arrival_mean), spec.rounds - 1);
      const std::uint64_t lifetime = 1 + rng.poisson(spec.churn_lifetime_mean);
      w.arrive_round = static_cast<std::size_t>(arrival);
      const std::uint64_t depart = arrival + lifetime;
      if (depart < spec.rounds) {
        w.depart_round = static_cast<std::size_t>(depart);
      }
    }
  }
  return fleet;
}

core::SimConfig sim_config(const ScenarioSpec& spec, Policy policy,
                           const RunOptions& options) {
  core::SimConfig config;
  config.rounds = spec.rounds;
  config.requester = spec.requester;
  config.redesign_every = policy == Policy::kStatic ? spec.rounds : 1;
  if (policy == Policy::kBandit) {
    config.policy.kind = ccd::policy::Kind::kZoomingBandit;
  } else if (policy == Policy::kPostedPrice) {
    config.policy.kind = ccd::policy::Kind::kPostedPrice;
  }
  config.seed = spec.seed;
  config.threads = options.threads;
  config.checkpoint_every = options.checkpoint_every;
  config.checkpoint_path = options.checkpoint_path;
  return config;
}

ScenarioHook::ScenarioHook(const ScenarioSpec& spec, const Fleet& fleet,
                           Policy policy)
    : spec_(spec), fleet_(&fleet), policy_(policy) {
  fixed_contract_ = contract::Contract::on_effort_grid(
      effort::QuadraticEffort(-1.0, 8.0, 2.0), spec_.fixed_effort,
      {0.0, spec_.fixed_payment});
  const std::size_t n = fleet.workers.size();
  community_of_.assign(n, kNone);
  for (std::size_t c = 0; c < fleet.communities.size(); ++c) {
    for (const std::size_t member : fleet.communities[c]) {
      community_of_[member] = c;
    }
  }
  boost_target_.assign(fleet.communities.size(), kNone);
  mask_now_.assign(n, 0);
  is_sybil_.assign(n, 0);
  for (const std::size_t idx : fleet.sybils) is_sybil_[idx] = 1;
  misreports_.assign(n, 0);
  for (const std::size_t idx : fleet.misreporters) misreports_[idx] = 1;
}

void ScenarioHook::on_contracts_posted(
    std::size_t /*round*/, bool /*redesigned*/,
    std::vector<contract::Contract>& contracts,
    const std::vector<double>& est_malicious, util::Rng& /*rng*/) {
  const std::size_t n = contracts.size();

  // Policy overrides first, so the adversaries below react to what the
  // workers will actually face.
  if (policy_ == Policy::kFixed) {
    for (std::size_t i = 0; i < n; ++i) contracts[i] = fixed_contract_;
  } else if (policy_ == Policy::kExclude) {
    for (std::size_t i = 0; i < n; ++i) {
      if (est_malicious[i] >= 0.5) contracts[i] = contract::Contract{};
    }
  }

  // Adaptive colluders: each community concentrates its boost on the
  // member whose posted contract saturates highest. The sybil swarm
  // (always the last community) keeps its own mutual-boost behaviour.
  if (spec_.adaptive) {
    const std::size_t adaptive_communities = spec_.community_sizes.size();
    for (std::size_t c = 0; c < adaptive_communities; ++c) {
      std::size_t best = kNone;
      double best_pay = -1.0;
      for (const std::size_t member : fleet_->communities[c]) {
        const double pay = contracts[member].max_payment();
        if (pay > best_pay) {
          best_pay = pay;
          best = member;
        }
      }
      boost_target_[c] = best;
    }
  }

  // Strategic misreporters: mask only on rounds where the posted
  // contract's Theorem 4.1 bounds leave more headroom than the configured
  // slack — the requester cannot tell a masked round from bound noise.
  for (std::size_t i = 0; i < n; ++i) {
    if (misreports_[i] == 0) continue;
    const contract::Contract& c = contracts[i];
    if (c.is_zero()) {
      mask_now_[i] = 0;
      continue;
    }
    const core::SimWorkerSpec& w = fleet_->workers[i];
    const double upper = contract::theorem41_upper_bound(
        w.psi, 1.0, spec_.requester.mu, w.beta, c.delta(), c.intervals(),
        w.omega);
    const double lower = contract::theorem41_lower_bound(
        w.psi, 1.0, spec_.requester.mu, w.beta, c.delta(), c.intervals());
    mask_now_[i] = (upper - lower > spec_.misreport_slack) ? 1 : 0;
  }
}

double ScenarioHook::adjust_feedback(std::size_t /*round*/, std::size_t worker,
                                     double feedback, util::Rng& rng) {
  const core::SimWorkerSpec& w = fleet_->workers[worker];
  if (is_sybil_[worker] != 0 && w.partners > 0) {
    feedback += static_cast<double>(
        rng.poisson(spec_.sybil_boost * static_cast<double>(w.partners)));
  }
  if (spec_.adaptive) {
    const std::size_t c = community_of_[worker];
    if (c != kNone && c < boost_target_.size() && boost_target_[c] == worker &&
        w.partners > 0) {
      feedback += static_cast<double>(
          rng.poisson(spec_.adaptive_boost * static_cast<double>(w.partners)));
    }
  }
  return feedback;
}

double ScenarioHook::adjust_accuracy_sample(std::size_t /*round*/,
                                            std::size_t worker, double sample,
                                            util::Rng& /*rng*/) {
  if (misreports_[worker] != 0 && mask_now_[worker] != 0) {
    // The mask shrinks the observable score deviation toward honest
    // levels; no extra RNG draw, so masked and unmasked rounds consume
    // the same number of random values.
    sample *= 0.25;
  }
  return sample;
}

ScenarioCell run_cell(const ScenarioSpec& spec, Policy policy,
                      const RunOptions& options) {
  spec.validate();
  ScenarioCell cell;
  cell.scenario = spec.name;
  cell.policy = policy;

  // --- Offline half: planted trace through the detection pipeline -------
  data::GeneratorParams params = data::GeneratorParams::from_population(
      spec.workers, spec.malicious, spec.community_sizes, spec.seed);
  params.n_sybil = spec.sybil;
  if (spec.churn_arrival_mean > 0.0 || spec.churn_lifetime_mean > 0.0) {
    params.campaign_rounds = spec.rounds;
    params.churn_arrival_mean = spec.churn_arrival_mean;
    params.churn_lifetime_mean = spec.churn_lifetime_mean;
  }
  const data::ReviewTrace trace = data::generate_trace(params);

  core::PipelineConfig pipeline;
  pipeline.requester = spec.requester;
  pipeline.strategy = pipeline_strategy(policy);
  pipeline.fixed_payment = spec.fixed_payment;
  pipeline.fixed_threshold_effort = spec.fixed_effort;
  pipeline.threads = options.threads;
  const core::PipelineResult offline = core::run_pipeline(trace, pipeline);

  cell.score.detector_precision = offline.detector_quality.precision();
  cell.score.detector_recall = offline.detector_quality.recall();
  cell.score.quarantined = offline.health.quarantined_workers;
  cell.score.excluded = offline.excluded_workers;

  // Community recall: a planted community counts as recovered when all
  // of its members land in one detected community.
  std::vector<std::vector<data::WorkerId>> planted;
  for (const data::Worker& w : trace.workers()) {
    if (w.true_community < 0) continue;
    const auto c = static_cast<std::size_t>(w.true_community);
    if (planted.size() <= c) planted.resize(c + 1);
    planted[c].push_back(w.id);
  }
  std::size_t recovered = 0;
  for (const std::vector<data::WorkerId>& members : planted) {
    bool found = false;
    for (const detect::Community& detected : offline.collusion.communities) {
      const std::set<data::WorkerId> pool(detected.members.begin(),
                                          detected.members.end());
      bool all = true;
      for (const data::WorkerId id : members) {
        if (pool.count(id) == 0) {
          all = false;
          break;
        }
      }
      if (all) {
        found = true;
        break;
      }
    }
    if (found) ++recovered;
  }
  cell.score.community_recall =
      planted.empty() ? 1.0
                      : static_cast<double>(recovered) /
                            static_cast<double>(planted.size());

  // --- Online half: the fleet through the simulator under `policy` ------
  const Fleet fleet = build_fleet(spec);
  ScenarioHook hook(spec, fleet, policy);
  core::StackelbergSimulator sim(fleet.workers, sim_config(spec, policy, options));
  sim.set_round_hook(&hook);
  const core::SimResult result = sim.run();
  cell.score.requester_utility = result.cumulative_requester_utility;
  for (const core::RoundRecord& record : result.rounds) {
    cell.score.total_compensation += record.total_compensation;
  }
  return cell;
}

MatrixResult run_matrix(const std::vector<ScenarioSpec>& specs,
                        const RunOptions& options) {
  MatrixResult result;
  for (const ScenarioSpec& spec : specs) {
    for (const Policy policy : all_policies()) {
      result.cells.push_back(run_cell(spec, policy, options));
    }
  }
  return result;
}

std::vector<std::string> MatrixResult::violations(double recall_floor) const {
  std::vector<std::string> out;
  const auto finite = [](double v) { return std::isfinite(v); };
  for (const ScenarioCell& cell : cells) {
    const std::string where =
        cell.scenario + "/" + to_string(cell.policy);
    if (!finite(cell.score.requester_utility) ||
        !finite(cell.score.total_compensation) ||
        !finite(cell.score.detector_precision) ||
        !finite(cell.score.detector_recall) ||
        !finite(cell.score.community_recall)) {
      out.push_back(where + ": non-finite score");
    }
    if (cell.score.detector_recall < recall_floor) {
      out.push_back(where + ": detector recall " +
                    std::to_string(cell.score.detector_recall) +
                    " below floor " + std::to_string(recall_floor));
    }
  }
  // Per scenario: the paper's dynamic designer must beat the flat
  // fixed-payment contract under every adversary.
  std::vector<std::string> scenarios;
  for (const ScenarioCell& cell : cells) {
    if (std::find(scenarios.begin(), scenarios.end(), cell.scenario) ==
        scenarios.end()) {
      scenarios.push_back(cell.scenario);
    }
  }
  for (const std::string& scenario : scenarios) {
    double dynamic_utility = 0.0;
    double fixed_utility = 0.0;
    bool have_dynamic = false;
    bool have_fixed = false;
    for (const ScenarioCell& cell : cells) {
      if (cell.scenario != scenario) continue;
      if (cell.policy == Policy::kDynamic) {
        dynamic_utility = cell.score.requester_utility;
        have_dynamic = true;
      } else if (cell.policy == Policy::kFixed) {
        fixed_utility = cell.score.requester_utility;
        have_fixed = true;
      }
    }
    if (have_dynamic && have_fixed &&
        dynamic_utility < fixed_utility - 1e-9) {
      out.push_back(scenario + ": dynamic utility " +
                    std::to_string(dynamic_utility) +
                    " below fixed-contract baseline " +
                    std::to_string(fixed_utility));
    }

    // The learner columns (bandit/posted) inherit the same >=-fixed
    // ordering invariant unless a cell is explicitly waived below. A
    // from-scratch learner spends a large share of a 24-round horizon
    // exploring, so cells where exploration provably cannot amortize
    // against the flat baseline inside the horizon are waived per-cell —
    // each waiver names the cell; regret convergence for these backends
    // is gated separately (and over a 2000+-round horizon) by
    // bench_policy_regret.
    struct Waiver {
      const char* scenario;
      Policy policy;
    };
    // The zooming bandit clears the fixed baseline in every preset (its
    // adaptive discretization finds a paying arm within a handful of
    // rounds), so kBandit is enforced in all 6 scenarios. The posted-price
    // learner is waived in all 6: its price ladder starts at payment_cap /
    // price_levels and climbs one elimination batch at a time, so over a
    // 24-round horizon it never reaches the payment level that beats a
    // flat 4.0-per-round contract — by design it trades early revenue for
    // incentive-compatible elicitation (Liu–Chen), which only pays off at
    // bench_policy_regret's 2000+-round horizons.
    static constexpr Waiver kWaivedCells[] = {
        {"paper", Policy::kPostedPrice},
        {"sybil", Policy::kPostedPrice},
        {"adaptive", Policy::kPostedPrice},
        {"misreport", Policy::kPostedPrice},
        {"churn", Policy::kPostedPrice},
        {"mixed", Policy::kPostedPrice},
    };
    for (const Policy learner : {Policy::kBandit, Policy::kPostedPrice}) {
      bool waived = false;
      for (const Waiver& waiver : kWaivedCells) {
        if (scenario == waiver.scenario && learner == waiver.policy) {
          waived = true;
          break;
        }
      }
      if (waived) continue;
      bool have_learner = false;
      double learner_utility = 0.0;
      for (const ScenarioCell& cell : cells) {
        if (cell.scenario == scenario && cell.policy == learner) {
          learner_utility = cell.score.requester_utility;
          have_learner = true;
        }
      }
      if (have_learner && have_fixed &&
          learner_utility < fixed_utility - 1e-9) {
        out.push_back(scenario + ": " + to_string(learner) + " utility " +
                      std::to_string(learner_utility) +
                      " below fixed-contract baseline " +
                      std::to_string(fixed_utility));
      }
    }
  }
  return out;
}

std::string MatrixResult::to_json() const {
  std::string json = "{\n  \"bench\": \"scenarios\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioCell& cell = cells[i];
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"scenario\": \"%s\", \"policy\": \"%s\", "
        "\"requester_utility\": %.6f, \"total_compensation\": %.6f, "
        "\"detector_precision\": %.6f, \"detector_recall\": %.6f, "
        "\"community_recall\": %.6f, \"quarantined\": %zu, "
        "\"excluded\": %zu}%s\n",
        cell.scenario.c_str(), to_string(cell.policy),
        cell.score.requester_utility, cell.score.total_compensation,
        cell.score.detector_precision, cell.score.detector_recall,
        cell.score.community_recall, cell.score.quarantined,
        cell.score.excluded, i + 1 < cells.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";
  return json;
}

IngestFeed::IngestFeed(const ScenarioSpec& spec)
    : spec_(spec),
      fleet_(build_fleet(spec)),
      hook_(spec_, fleet_, Policy::kDynamic),
      rng_(spec.seed) {}

std::vector<IngestFeed::Observation> IngestFeed::round(
    const std::vector<contract::Contract>& contracts) {
  const std::size_t n = fleet_.workers.size();
  std::vector<contract::Contract> posted =
      contracts.empty() ? std::vector<contract::Contract>(n) : contracts;
  CCD_CHECK_MSG(posted.size() == n,
                "IngestFeed::round: got " << posted.size()
                                          << " contracts for " << n
                                          << " workers");
  const std::vector<double> est_malicious(n, 0.0);
  hook_.on_contracts_posted(next_round_, true, posted, est_malicious, rng_);

  const core::SimConfig defaults;
  std::vector<Observation> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::SimWorkerSpec& w = fleet_.workers[i];
    if (!w.active_at(next_round_)) continue;  // churned out: zero row
    const core::SimWorkerSpec::Behaviour behaviour = w.behaviour_at(next_round_);
    const contract::WorkerIncentives inc{w.beta, behaviour.omega};
    const contract::BestResponse br =
        contract::best_response(posted[i], w.psi, inc);
    double feedback = br.feedback + rng_.normal(0.0, defaults.feedback_noise);
    feedback = hook_.adjust_feedback(next_round_, i, feedback, rng_);
    feedback = std::max(0.0, feedback);
    double sample = behaviour.accuracy_distance +
                    rng_.normal(0.0, defaults.accuracy_noise);
    sample = hook_.adjust_accuracy_sample(next_round_, i, sample, rng_);
    sample = std::max(0.0, sample);
    out[i] = Observation{br.effort, feedback, sample};
  }
  ++next_round_;
  return out;
}

}  // namespace ccd::scenario
