// Connected components of an undirected graph (iterative DFS, as the paper
// prescribes in §IV-A for finding collusive communities).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ccd::graph {

struct ComponentResult {
  /// component_of[v] is the 0-based component index of vertex v.
  std::vector<std::size_t> component_of;
  /// members[c] lists the vertices of component c, in discovery order.
  std::vector<std::vector<std::size_t>> members;

  std::size_t count() const { return members.size(); }
};

/// DFS-based connected components.
ComponentResult connected_components(const Graph& graph);

/// BFS variant (identical partition, used to cross-check the DFS in tests).
ComponentResult connected_components_bfs(const Graph& graph);

}  // namespace ccd::graph
