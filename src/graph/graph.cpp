#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ccd::graph {

Graph::Graph(std::size_t vertex_count) : adjacency_(vertex_count) {}

void Graph::add_edge(std::size_t u, std::size_t v) {
  CCD_CHECK_MSG(u < vertex_count() && v < vertex_count(),
                "add_edge vertex out of range");
  adjacency_[u].push_back(v);
  if (u != v) adjacency_[v].push_back(u);
  ++edge_count_;
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  CCD_CHECK_MSG(u < vertex_count() && v < vertex_count(),
                "has_edge vertex out of range");
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const std::size_t target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

const std::vector<std::size_t>& Graph::neighbors(std::size_t v) const {
  CCD_CHECK_MSG(v < vertex_count(), "neighbors vertex out of range");
  return adjacency_[v];
}

std::size_t Graph::degree(std::size_t v) const { return neighbors(v).size(); }

}  // namespace ccd::graph
