// Undirected graph over dense vertex ids [0, n) as an adjacency list.
//
// This is the auxiliary graph 𝒢 = (𝒰, 𝓗) of the paper's §IV-A: vertices are
// (malicious) workers, and an edge connects two workers who target the same
// product. Collusive communities are its connected components.
#pragma once

#include <cstddef>
#include <vector>

namespace ccd::graph {

class Graph {
 public:
  explicit Graph(std::size_t vertex_count = 0);

  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds an undirected edge; self-loops and duplicate edges are allowed by
  /// the structure (callers dedupe if needed via has_edge).
  void add_edge(std::size_t u, std::size_t v);

  bool has_edge(std::size_t u, std::size_t v) const;

  const std::vector<std::size_t>& neighbors(std::size_t v) const;

  std::size_t degree(std::size_t v) const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace ccd::graph
