#include "graph/union_find.hpp"

#include "util/error.hpp"

namespace ccd::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  CCD_CHECK_MSG(x < parent_.size(), "UnionFind::find out of range");
  std::size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const std::size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --components_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t UnionFind::component_size(std::size_t x) {
  return size_[find(x)];
}

}  // namespace ccd::graph
