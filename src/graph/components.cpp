#include "graph/components.hpp"

#include <limits>
#include <queue>

namespace ccd::graph {
namespace {

constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

}  // namespace

ComponentResult connected_components(const Graph& graph) {
  ComponentResult result;
  result.component_of.assign(graph.vertex_count(), kUnvisited);

  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < graph.vertex_count(); ++start) {
    if (result.component_of[start] != kUnvisited) continue;
    const std::size_t comp = result.members.size();
    result.members.emplace_back();
    stack.push_back(start);
    result.component_of[start] = comp;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      result.members[comp].push_back(v);
      for (const std::size_t next : graph.neighbors(v)) {
        if (result.component_of[next] == kUnvisited) {
          result.component_of[next] = comp;
          stack.push_back(next);
        }
      }
    }
  }
  return result;
}

ComponentResult connected_components_bfs(const Graph& graph) {
  ComponentResult result;
  result.component_of.assign(graph.vertex_count(), kUnvisited);

  std::queue<std::size_t> queue;
  for (std::size_t start = 0; start < graph.vertex_count(); ++start) {
    if (result.component_of[start] != kUnvisited) continue;
    const std::size_t comp = result.members.size();
    result.members.emplace_back();
    queue.push(start);
    result.component_of[start] = comp;
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop();
      result.members[comp].push_back(v);
      for (const std::size_t next : graph.neighbors(v)) {
        if (result.component_of[next] == kUnvisited) {
          result.component_of[next] = comp;
          queue.push(next);
        }
      }
    }
  }
  return result;
}

}  // namespace ccd::graph
