// Disjoint-set forest with path compression and union by size.
//
// Used as an alternative community-finding backend (the paper uses DFS;
// union-find lets us cluster straight from the worker->product incidence
// without materializing the quadratic same-product edge set).
#pragma once

#include <cstddef>
#include <vector>

namespace ccd::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0);

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set (with path compression).
  std::size_t find(std::size_t x);

  /// Merge the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b);

  /// Number of elements in x's set.
  std::size_t component_size(std::size_t x);

  /// Number of disjoint sets.
  std::size_t component_count() const { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_ = 0;
};

}  // namespace ccd::graph
