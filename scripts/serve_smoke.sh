#!/usr/bin/env bash
# Serve-subsystem smoke test: crash-safe multi-session serving end to end.
#
# 1. Reference run: a fresh ccdd drives 3 sessions straight to 10 rounds;
#    their contract CSVs are the ground truth.
# 2. Interrupted run: a second daemon drives the same 3 sessions to round
#    5, is killed with SIGKILL mid-campaign, restarts on the same
#    checkpoint directory (resuming every session), and finishes to round
#    10.
# 3. The interrupted run's contracts must be byte-identical to the
#    reference (full-precision CSV export, so byte == bitwise).
#
# 4. Gateway failover: the same 3 sessions re-driven through
#    `ccd-gateway` over 3 ccdd shards; the shard owning "alpha" is killed
#    with SIGKILL mid-campaign, its sessions fail over to the survivors
#    via checkpoint handoff, and the finished contracts must again be
#    byte-identical to the reference.
#
# 5. Rolling restart: a fresh 3-shard fleet, the shard owning "alpha" is
#    killed with SIGKILL mid-campaign, a replacement ccdd is booted on the
#    same endpoint and rejoined with `ccdctl gateway op=join` (which moves
#    only the sessions whose ring owner changed back onto it), and the
#    finished contracts must once more be byte-identical to the reference.
#
# 6. Transport auth: a ccdd with token= and require_token=1 on loopback
#    TCP; a wrong (or missing) client token must be refused with exit
#    code 7 before any op runs, the right token must work.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
CCDD="$BUILD/tools/ccdd"
CCDCTL="$BUILD/tools/ccdctl"
GATEWAY="$BUILD/tools/ccd-gateway"
WORK=$(mktemp -d)
DAEMON_PID=""
EXTRA_PIDS=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  for pid in $EXTRA_PIDS; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {
  local sock=$1
  for _ in $(seq 1 100); do
    if "$CCDCTL" serve socket="$sock" op=ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.05
  done
  echo "FAIL: daemon never came up on $sock" >&2
  exit 1
}

SESSIONS="alpha beta gamma"
ROUNDS=10
MIDPOINT=5

echo "== reference: uninterrupted run to round $ROUNDS =="
SOCK="$WORK/ref.sock"
"$CCDD" socket="$SOCK" checkpoint_dir="$WORK/ref" &
DAEMON_PID=$!
wait_for_socket "$SOCK"
seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit socket="$SOCK" session="$s" rounds=$ROUNDS seed=$seed \
      workers=5 malicious=2 out="$WORK/ref-$s.csv"
  seed=$((seed + 1))
done
"$CCDCTL" serve socket="$SOCK" op=shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

echo "== interrupted: drive to round $MIDPOINT, kill -9, resume, finish =="
SOCK="$WORK/live.sock"
"$CCDD" socket="$SOCK" checkpoint_dir="$WORK/live" &
DAEMON_PID=$!
wait_for_socket "$SOCK"
seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit socket="$SOCK" session="$s" rounds=$ROUNDS to=$MIDPOINT \
      seed=$seed workers=5 malicious=2
  seed=$((seed + 1))
done
# Hard kill mid-campaign: no drain, no final checkpoint pass. Durability
# must come from the per-round checkpoints alone.
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
rm -f "$SOCK"  # SIGKILL skipped the unlink

"$CCDD" socket="$SOCK" checkpoint_dir="$WORK/live" &
DAEMON_PID=$!
wait_for_socket "$SOCK"
seed=100
for s in $SESSIONS; do
  # `submit` re-attaches idempotently (allow_existing) and continues from
  # the checkpointed round — seeds must still match the reference run.
  "$CCDCTL" submit socket="$SOCK" session="$s" rounds=$ROUNDS seed=$seed \
      workers=5 malicious=2 out="$WORK/live-$s.csv"
  seed=$((seed + 1))
done
"$CCDCTL" serve socket="$SOCK" op=shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

echo "== diff: interrupted-and-resumed vs uninterrupted =="
for s in $SESSIONS; do
  cmp "$WORK/ref-$s.csv" "$WORK/live-$s.csv"
  echo "session $s: contracts byte-identical after kill -9 + resume"
done

echo "== gateway: 3 shards, kill -9 the shard owning alpha, failover, finish =="
SHARD_PIDS=()
SPECS=""
for i in 0 1 2; do
  mkdir -p "$WORK/gw-shard$i"
  "$CCDD" socket="$WORK/shard$i.sock" checkpoint_dir="$WORK/gw-shard$i" &
  SHARD_PIDS[$i]=$!
  EXTRA_PIDS="$EXTRA_PIDS ${SHARD_PIDS[$i]}"
  SPECS="$SPECS,s$i=unix:$WORK/shard$i.sock@$WORK/gw-shard$i"
done
GW_SOCK="$WORK/gateway.sock"
"$GATEWAY" socket="$GW_SOCK" shards="${SPECS#,}" health_interval=200 &
GATEWAY_PID=$!
EXTRA_PIDS="$EXTRA_PIDS $GATEWAY_PID"
wait_for_socket "$GW_SOCK"

seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit gateway="$GW_SOCK" session="$s" rounds=$ROUNDS \
      to=$MIDPOINT seed=$seed workers=5 malicious=2
  seed=$((seed + 1))
done

# The consistent-hash ring decides ownership; the owner's checkpoint dir
# is the one holding alpha's snapshot. Kill that shard, hard.
VICTIM=""
for i in 0 1 2; do
  if [ -e "$WORK/gw-shard$i/alpha.sim.ckpt" ]; then VICTIM=$i; fi
done
[ -n "$VICTIM" ] || { echo "FAIL: no shard owns alpha" >&2; exit 1; }
kill -9 "${SHARD_PIDS[$VICTIM]}"
wait "${SHARD_PIDS[$VICTIM]}" 2>/dev/null || true

# Finish every session through the gateway: the victim's sessions must
# have failed over to the survivors and continue bitwise.
seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit gateway="$GW_SOCK" session="$s" rounds=$ROUNDS seed=$seed \
      workers=5 malicious=2 out="$WORK/gw-$s.csv"
  seed=$((seed + 1))
done
"$CCDCTL" serve gateway="$GW_SOCK" op=health
"$CCDCTL" serve gateway="$GW_SOCK" op=shutdown
for i in 0 1 2; do
  [ "$i" = "$VICTIM" ] && continue
  wait "${SHARD_PIDS[$i]}"
done
wait "$GATEWAY_PID"
EXTRA_PIDS=""

echo "== diff: failed-over vs uninterrupted =="
for s in $SESSIONS; do
  cmp "$WORK/ref-$s.csv" "$WORK/gw-$s.csv"
  echo "session $s: contracts byte-identical after shard kill -9 + failover"
done

echo "== rolling restart: kill -9 one shard, rejoin it, finish =="
RR_PIDS=()
SPECS=""
for i in 0 1 2; do
  mkdir -p "$WORK/rr-shard$i"
  "$CCDD" socket="$WORK/rr$i.sock" checkpoint_dir="$WORK/rr-shard$i" &
  RR_PIDS[$i]=$!
  EXTRA_PIDS="$EXTRA_PIDS ${RR_PIDS[$i]}"
  SPECS="$SPECS,s$i=unix:$WORK/rr$i.sock@$WORK/rr-shard$i"
done
RR_SOCK="$WORK/rr-gateway.sock"
"$GATEWAY" socket="$RR_SOCK" shards="${SPECS#,}" health_interval=200 &
RR_GATEWAY_PID=$!
EXTRA_PIDS="$EXTRA_PIDS $RR_GATEWAY_PID"
wait_for_socket "$RR_SOCK"

seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit gateway="$RR_SOCK" session="$s" rounds=$ROUNDS \
      to=$MIDPOINT seed=$seed workers=5 malicious=2
  seed=$((seed + 1))
done

VICTIM=""
for i in 0 1 2; do
  if [ -e "$WORK/rr-shard$i/alpha.sim.ckpt" ]; then VICTIM=$i; fi
done
[ -n "$VICTIM" ] || { echo "FAIL: no shard owns alpha" >&2; exit 1; }
kill -9 "${RR_PIDS[$VICTIM]}"
wait "${RR_PIDS[$VICTIM]}" 2>/dev/null || true

# The failover handoff scavenges the victim's checkpoints onto the
# survivors and unlinks the files it moved: alpha's snapshot vanishing
# from the victim's dir means the handoff has run.
for _ in $(seq 1 100); do
  [ -e "$WORK/rr-shard$VICTIM/alpha.sim.ckpt" ] || break
  sleep 0.1
done
[ ! -e "$WORK/rr-shard$VICTIM/alpha.sim.ckpt" ] || {
  echo "FAIL: handoff never scavenged alpha from shard $VICTIM" >&2; exit 1; }

# Same endpoint, fresh daemon — then rejoin it through the admin frame.
"$CCDD" socket="$WORK/rr$VICTIM.sock" checkpoint_dir="$WORK/rr-shard$VICTIM" &
RR_PIDS[$VICTIM]=$!
EXTRA_PIDS="$EXTRA_PIDS ${RR_PIDS[$VICTIM]}"
wait_for_socket "$WORK/rr$VICTIM.sock"
"$CCDCTL" gateway gateway="$RR_SOCK" op=join \
    spec="s$VICTIM=unix:$WORK/rr$VICTIM.sock@$WORK/rr-shard$VICTIM"

# The rejoin moves alpha back to its original owner, and the restore
# checkpoints before publishing — the snapshot must be home again.
[ -e "$WORK/rr-shard$VICTIM/alpha.sim.ckpt" ] || {
  echo "FAIL: rejoin did not move alpha back to shard $VICTIM" >&2; exit 1; }

seed=100
for s in $SESSIONS; do
  "$CCDCTL" submit gateway="$RR_SOCK" session="$s" rounds=$ROUNDS seed=$seed \
      workers=5 malicious=2 out="$WORK/rr-$s.csv"
  seed=$((seed + 1))
done
"$CCDCTL" serve gateway="$RR_SOCK" op=shutdown
for i in 0 1 2; do wait "${RR_PIDS[$i]}"; done
wait "$RR_GATEWAY_PID"
EXTRA_PIDS=""

echo "== diff: rolling-restarted vs uninterrupted =="
for s in $SESSIONS; do
  cmp "$WORK/ref-$s.csv" "$WORK/rr-$s.csv"
  echo "session $s: contracts byte-identical after shard kill -9 + rejoin"
done

echo "== auth: wrong token refused with exit 7, right token works =="
"$CCDD" port=0 token=s3cret require_token=1 > "$WORK/auth.out" &
AUTH_PID=$!
EXTRA_PIDS="$AUTH_PID"
AUTH_PORT=""
for _ in $(seq 1 100); do
  AUTH_PORT=$(sed -n 's/^ccdd: listening on tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/auth.out" 2>/dev/null || true)
  [ -n "$AUTH_PORT" ] && break
  sleep 0.05
done
[ -n "$AUTH_PORT" ] || { echo "FAIL: auth daemon never printed its port" >&2; exit 1; }

set +e
"$CCDCTL" serve port="$AUTH_PORT" token=wrong op=ping >/dev/null 2>&1
RC_WRONG=$?
"$CCDCTL" serve port="$AUTH_PORT" op=ping >/dev/null 2>&1
RC_NONE=$?
set -e
[ "$RC_WRONG" = 7 ] || { echo "FAIL: wrong token exited $RC_WRONG, want 7" >&2; exit 1; }
[ "$RC_NONE" = 7 ] || { echo "FAIL: missing token exited $RC_NONE, want 7" >&2; exit 1; }
echo "wrong and missing tokens both refused with exit 7"

"$CCDCTL" serve port="$AUTH_PORT" token=s3cret op=ping
"$CCDCTL" serve port="$AUTH_PORT" token=s3cret op=shutdown
wait "$AUTH_PID"
EXTRA_PIDS=""

echo "serve smoke: OK"
