// Quickstart: design a dynamic contract for one worker in ~30 lines.
//
//   1. Describe how the worker's feedback responds to effort (psi).
//   2. Describe the worker's incentives (effort cost beta; set omega > 0
//      for a worker with a feedback-influence agenda).
//   3. Ask the designer for the requester-optimal piecewise-linear contract.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "contract/designer.hpp"

int main() {
  using namespace ccd;

  // Feedback law: q = psi(y) = -y^2 + 8y + 2, concave and increasing on the
  // usable effort range (fit such a curve from your own data with
  // ccd::effort::fit_effort_function).
  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);

  contract::SubproblemSpec spec;
  spec.psi = psi;
  spec.incentives.beta = 1.0;   // the worker's cost per unit of effort
  spec.incentives.omega = 0.0;  // 0 => honest worker
  spec.weight = 1.0;            // how much the requester values feedback
  spec.mu = 1.0;                // how much the requester weighs payments
  spec.intervals = 20;          // partition density (finer => closer to opt)

  const contract::DesignResult d = contract::design_contract(spec);

  std::printf("designed contract (feedback -> payment):\n  %s\n\n",
              d.contract.to_string(3).c_str());
  std::printf("worker best response: effort %.3f -> feedback %.3f, paid %.3f "
              "(worker utility %.3f)\n",
              d.response.effort, d.response.feedback,
              d.response.compensation, d.response.utility);
  std::printf("requester utility: %.3f  (Theorem 4.1 bounds: [%.3f, %.3f])\n",
              d.requester_utility, d.lower_bound, d.upper_bound);
  std::printf("selected target interval k_opt = %zu of %zu\n", d.k_opt,
              spec.intervals);
  return 0;
}
