// collusion_forensics: investigate the malicious side of a review trace —
// detector quality, collusive-community structure (the paper's §IV-A
// clustering), the Table-II style census, and per-community effort curves.
//
// Usage: collusion_forensics [scale=medium|small|full] [threshold=0.5]
#include <algorithm>
#include <cstdio>

#include "data/generator.hpp"
#include "data/metrics.hpp"
#include "data/splitter.hpp"
#include "detect/collusion.hpp"
#include "detect/expert.hpp"
#include "detect/malicious.hpp"
#include "effort/fitting.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "medium");
  const double threshold = params.get_double("threshold", 0.5);
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::medium();
  if (scale == "small") gen = data::GeneratorParams::small();
  else if (scale == "full") gen = data::GeneratorParams::amazon2015();

  std::printf("=== Collusion forensics ===\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("trace: %s\n\n", trace.stats().to_string().c_str());

  const data::WorkerMetrics metrics(trace);
  const detect::ExpertPanel experts(trace, metrics);
  std::printf("expert panel: %zu experts, %.1f%% product coverage\n",
              experts.experts().size(), 100.0 * experts.coverage());

  const detect::MaliciousDetector detector(trace, experts);
  const auto quality = detector.evaluate(trace, threshold);
  std::printf("detector @ threshold %.2f: precision %.3f, recall %.3f, "
              "F1 %.3f\n\n",
              threshold, quality.precision(), quality.recall(), quality.f1());

  // Cluster the detected malicious workers and census the communities.
  const detect::CollusionResult detected = detect::cluster_collusive_workers(
      trace, detector.flagged(threshold));
  std::printf("detected: %s\n", detect::census(detected).to_string().c_str());
  const detect::CollusionResult truth =
      detect::cluster_ground_truth_malicious(trace);
  std::printf("ground truth: %s\n\n",
              detect::census(truth).to_string().c_str());

  // Drill into the biggest communities: member count, shared targets, and
  // the meta-worker effort curve used by the contract designer.
  util::TextTable table({"community", "members", "targets",
                         "sum-effort curve", "samples"});
  const std::size_t top =
      std::min<std::size_t>(5, truth.communities.size());
  for (std::size_t c = 0; c < top; ++c) {
    const detect::Community& community = truth.communities[c];
    const auto samples =
        effort::community_sum_samples(trace, metrics, community.members);
    std::string curve = "(too few samples)";
    if (samples.size() >= 10) {
      curve = effort::fit_effort_function(samples).model.to_string(3);
    }
    table.add_row({std::to_string(c),
                   std::to_string(community.members.size()),
                   std::to_string(community.targets.size()), curve,
                   std::to_string(samples.size())});
  }
  std::printf("largest ground-truth communities:\n%s", table.render().c_str());

  // Holdout evaluation: thresholds tuned on one split must generalize to
  // unseen workers for the detector to be trustworthy in deployment.
  const data::TraceSplit split = data::split_trace(trace, 0.7, 7);
  const data::WorkerMetrics train_metrics(split.train);
  const detect::ExpertPanel train_experts(split.train, train_metrics);
  const detect::MaliciousDetector train_detector(split.train, train_experts);
  const auto train_quality = train_detector.evaluate(split.train, threshold);
  const data::WorkerMetrics test_metrics(split.test);
  const detect::ExpertPanel test_experts(split.test, test_metrics);
  const detect::MaliciousDetector test_detector(split.test, test_experts);
  const auto test_quality = test_detector.evaluate(split.test, threshold);
  std::printf("\nholdout check (70/30 worker split): train F1 %.3f vs "
              "test F1 %.3f\n",
              train_quality.f1(), test_quality.f1());
  return 0;
}
