// dynamic_rounds: the repeated Stackelberg game in action. A small fleet
// works for T rounds; one worker starts honest and turns malicious halfway
// through. Watch the requester's estimates, the contract, and the payments
// adapt round by round.
//
// Usage: dynamic_rounds [rounds=40] [seed=11]
#include <cstdio>

#include "core/stackelberg.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(params.get_int("rounds", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.get_int("seed", 11));
  params.assert_all_consumed();

  const effort::QuadraticEffort psi(-1.0, 8.0, 2.0);

  core::SimWorkerSpec steady;
  steady.name = "steady-honest";
  steady.psi = psi;
  steady.accuracy_distance = 0.35;

  core::SimWorkerSpec turncoat;
  turncoat.name = "turncoat";
  turncoat.psi = psi;
  turncoat.accuracy_distance = 0.35;
  turncoat.switch_round = rounds / 2;
  turncoat.switched_omega = 0.6;
  turncoat.switched_accuracy_distance = 1.9;

  core::SimConfig config;
  config.rounds = rounds;
  config.seed = seed;

  std::printf("=== Dynamic rounds: %zu rounds, switch at round %zu ===\n\n",
              rounds, rounds / 2);
  const core::SimResult result =
      core::StackelbergSimulator({steady, turncoat}, config).run();

  std::printf("%-6s %-12s %-12s %-12s %-12s %-10s\n", "round", "req-utility",
              "steady-pay", "turn-pay", "turn-effort", "turn-e_mal");
  for (std::size_t t = 0; t < rounds; ++t) {
    const core::WorkerRound& s = result.worker_history[0][t];
    const core::WorkerRound& u = result.worker_history[1][t];
    std::printf("%-6zu %-12.3f %-12.3f %-12.3f %-12.3f %-10.3f%s\n", t,
                result.rounds[t].requester_utility, s.compensation,
                u.compensation, u.effort, u.estimated_malicious,
                t == rounds / 2 ? "   <-- turns malicious" : "");
  }
  std::printf("\ncumulative requester utility: %.3f\n",
              result.cumulative_requester_utility);
  return 0;
}
