// review_campaign: the full pipeline on a synthetic review marketplace —
// the scenario from the paper's introduction. A requester crowdsources
// product reviews; the worker pool mixes honest reviewers, lone paid
// spammers, and collusive spam rings. The pipeline detects, clusters, fits
// effort curves, and designs per-worker contracts; we then compare against
// the exclude-all-malicious policy.
//
// Usage: review_campaign [scale=medium|small|full] [mu=1.0]
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/generator.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const std::string scale = params.get_string("scale", "medium");
  const double mu = params.get_double("mu", 1.0);
  params.assert_all_consumed();

  data::GeneratorParams gen = data::GeneratorParams::medium();
  if (scale == "small") gen = data::GeneratorParams::small();
  else if (scale == "full") gen = data::GeneratorParams::amazon2015();

  std::printf("=== Review campaign ===\n");
  const data::ReviewTrace trace = data::generate_trace(gen);
  std::printf("marketplace: %s\n\n", trace.stats().to_string().c_str());

  core::PipelineConfig config;
  config.requester.mu = mu;
  const core::PipelineResult result = core::run_pipeline(trace, config);

  std::printf("pipeline: %s\n\n",
              core::describe_pipeline_result(result).c_str());
  std::printf("compensation by ground-truth class:\n%s\n",
              core::render_class_table(core::compensation_by_class(result),
                                       "comp")
                  .c_str());
  std::printf("induced effort by class:\n%s\n",
              core::render_class_table(core::effort_by_class(result),
                                       "effort")
                  .c_str());

  // The comparison the paper closes with (Fig. 8(c)).
  core::PipelineConfig exclusion = config;
  exclusion.strategy = core::PricingStrategy::kExcludeMalicious;
  const core::PipelineResult baseline = core::run_pipeline(trace, exclusion);
  std::printf("requester utility: dynamic contract %.2f vs exclusion %.2f "
              "(+%.2f%%)\n",
              result.total_requester_utility,
              baseline.total_requester_utility,
              100.0 *
                  (result.total_requester_utility -
                   baseline.total_requester_utility) /
                  baseline.total_requester_utility);
  return 0;
}
