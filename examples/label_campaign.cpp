// label_campaign: the paper's §VII generalization in action — dynamic
// contracts driving a binary-classification crowdsourcing campaign.
//
// A pool of diligent labelers, adversaries pushing one class, and a spammer
// label batches of tasks. The requester calibrates under flat pay, fits
// effort->agreement curves, designs per-labeler contracts, and the aggregate
// label quality is compared against the flat-pay baseline.
//
// Usage: label_campaign [diligent=8] [adversarial=2] [spammers=1] [seed=17]
#include <cstdio>

#include "tasks/campaign.hpp"
#include "util/config.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccd;
  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  const auto n_diligent =
      static_cast<std::size_t>(params.get_int("diligent", 8));
  const auto n_adversarial =
      static_cast<std::size_t>(params.get_int("adversarial", 2));
  const auto n_spammers =
      static_cast<std::size_t>(params.get_int("spammers", 1));
  const auto seed = static_cast<std::uint64_t>(params.get_int("seed", 17));
  params.assert_all_consumed();

  std::vector<tasks::LabelerSpec> pool;
  for (std::size_t i = 0; i < n_diligent; ++i) {
    tasks::LabelerSpec s;
    s.name = "diligent" + std::to_string(i);
    s.accuracy.cap = 0.9 + 0.01 * static_cast<double>(i % 5);
    pool.push_back(s);
  }
  for (std::size_t i = 0; i < n_adversarial; ++i) {
    tasks::LabelerSpec s;
    s.name = "adversary" + std::to_string(i);
    s.type = tasks::LabelerType::kAdversarial;
    s.omega = 0.5;
    s.target_label = true;
    pool.push_back(s);
  }
  for (std::size_t i = 0; i < n_spammers; ++i) {
    tasks::LabelerSpec s;
    s.name = "spammer" + std::to_string(i);
    s.type = tasks::LabelerType::kSpammer;
    pool.push_back(s);
  }

  tasks::CampaignConfig config;
  config.seed = seed;

  std::printf("=== Labeling campaign: %zu diligent, %zu adversarial, %zu "
              "spammers ===\n\n",
              n_diligent, n_adversarial, n_spammers);
  const tasks::CampaignResult result = tasks::run_campaign(pool, config);

  util::TextTable table({"labeler", "type", "suspected", "weight",
                         "effort", "pay/round", "correct rate"});
  for (const tasks::LabelerOutcome& out : result.labelers) {
    table.add_row({out.spec.name, tasks::to_string(out.spec.type),
                   out.suspected_adversarial ? "yes" : "no",
                   util::format_double(out.weight, 3),
                   util::format_double(out.mean_effort, 3),
                   util::format_double(out.mean_pay, 3),
                   util::format_double(out.mean_correct_rate, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("aggregate label accuracy: majority %.4f | weighted %.4f | "
              "flat-pay baseline %.4f\n",
              result.accuracy_majority, result.accuracy_weighted,
              result.baseline_accuracy_majority);
  std::printf("requester utility: contracts %.2f vs flat pay %.2f\n",
              result.requester_utility, result.baseline_requester_utility);
  return 0;
}
