file(REMOVE_RECURSE
  "CMakeFiles/ccd_effort.dir/effort_model.cpp.o"
  "CMakeFiles/ccd_effort.dir/effort_model.cpp.o.d"
  "CMakeFiles/ccd_effort.dir/fitting.cpp.o"
  "CMakeFiles/ccd_effort.dir/fitting.cpp.o.d"
  "libccd_effort.a"
  "libccd_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
