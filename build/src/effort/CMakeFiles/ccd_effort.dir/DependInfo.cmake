
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/effort/effort_model.cpp" "src/effort/CMakeFiles/ccd_effort.dir/effort_model.cpp.o" "gcc" "src/effort/CMakeFiles/ccd_effort.dir/effort_model.cpp.o.d"
  "/root/repo/src/effort/fitting.cpp" "src/effort/CMakeFiles/ccd_effort.dir/fitting.cpp.o" "gcc" "src/effort/CMakeFiles/ccd_effort.dir/fitting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ccd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ccd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ccd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
