# Empty dependencies file for ccd_effort.
# This may be replaced when dependencies are built.
