file(REMOVE_RECURSE
  "libccd_effort.a"
)
