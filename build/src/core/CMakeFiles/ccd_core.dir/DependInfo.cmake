
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/ccd_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/ccd_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ccd_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ccd_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ccd_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ccd_core.dir/report.cpp.o.d"
  "/root/repo/src/core/requester.cpp" "src/core/CMakeFiles/ccd_core.dir/requester.cpp.o" "gcc" "src/core/CMakeFiles/ccd_core.dir/requester.cpp.o.d"
  "/root/repo/src/core/stackelberg.cpp" "src/core/CMakeFiles/ccd_core.dir/stackelberg.cpp.o" "gcc" "src/core/CMakeFiles/ccd_core.dir/stackelberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ccd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ccd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ccd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/effort/CMakeFiles/ccd_effort.dir/DependInfo.cmake"
  "/root/repo/build/src/contract/CMakeFiles/ccd_contract.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
