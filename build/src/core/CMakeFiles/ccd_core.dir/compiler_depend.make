# Empty compiler generated dependencies file for ccd_core.
# This may be replaced when dependencies are built.
