file(REMOVE_RECURSE
  "libccd_core.a"
)
