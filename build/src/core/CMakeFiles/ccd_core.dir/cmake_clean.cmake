file(REMOVE_RECURSE
  "CMakeFiles/ccd_core.dir/equilibrium.cpp.o"
  "CMakeFiles/ccd_core.dir/equilibrium.cpp.o.d"
  "CMakeFiles/ccd_core.dir/pipeline.cpp.o"
  "CMakeFiles/ccd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ccd_core.dir/report.cpp.o"
  "CMakeFiles/ccd_core.dir/report.cpp.o.d"
  "CMakeFiles/ccd_core.dir/requester.cpp.o"
  "CMakeFiles/ccd_core.dir/requester.cpp.o.d"
  "CMakeFiles/ccd_core.dir/stackelberg.cpp.o"
  "CMakeFiles/ccd_core.dir/stackelberg.cpp.o.d"
  "libccd_core.a"
  "libccd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
