file(REMOVE_RECURSE
  "libccd_tasks.a"
)
