# Empty dependencies file for ccd_tasks.
# This may be replaced when dependencies are built.
