file(REMOVE_RECURSE
  "CMakeFiles/ccd_tasks.dir/campaign.cpp.o"
  "CMakeFiles/ccd_tasks.dir/campaign.cpp.o.d"
  "CMakeFiles/ccd_tasks.dir/labeling.cpp.o"
  "CMakeFiles/ccd_tasks.dir/labeling.cpp.o.d"
  "libccd_tasks.a"
  "libccd_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
