file(REMOVE_RECURSE
  "CMakeFiles/ccd_detect.dir/collusion.cpp.o"
  "CMakeFiles/ccd_detect.dir/collusion.cpp.o.d"
  "CMakeFiles/ccd_detect.dir/expert.cpp.o"
  "CMakeFiles/ccd_detect.dir/expert.cpp.o.d"
  "CMakeFiles/ccd_detect.dir/malicious.cpp.o"
  "CMakeFiles/ccd_detect.dir/malicious.cpp.o.d"
  "libccd_detect.a"
  "libccd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
