# Empty compiler generated dependencies file for ccd_detect.
# This may be replaced when dependencies are built.
