file(REMOVE_RECURSE
  "libccd_detect.a"
)
