
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/analytics.cpp" "src/data/CMakeFiles/ccd_data.dir/analytics.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/analytics.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/ccd_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "src/data/CMakeFiles/ccd_data.dir/loader.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/loader.cpp.o.d"
  "/root/repo/src/data/metrics.cpp" "src/data/CMakeFiles/ccd_data.dir/metrics.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/metrics.cpp.o.d"
  "/root/repo/src/data/splitter.cpp" "src/data/CMakeFiles/ccd_data.dir/splitter.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/splitter.cpp.o.d"
  "/root/repo/src/data/trace.cpp" "src/data/CMakeFiles/ccd_data.dir/trace.cpp.o" "gcc" "src/data/CMakeFiles/ccd_data.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ccd_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
