file(REMOVE_RECURSE
  "CMakeFiles/ccd_data.dir/analytics.cpp.o"
  "CMakeFiles/ccd_data.dir/analytics.cpp.o.d"
  "CMakeFiles/ccd_data.dir/generator.cpp.o"
  "CMakeFiles/ccd_data.dir/generator.cpp.o.d"
  "CMakeFiles/ccd_data.dir/loader.cpp.o"
  "CMakeFiles/ccd_data.dir/loader.cpp.o.d"
  "CMakeFiles/ccd_data.dir/metrics.cpp.o"
  "CMakeFiles/ccd_data.dir/metrics.cpp.o.d"
  "CMakeFiles/ccd_data.dir/splitter.cpp.o"
  "CMakeFiles/ccd_data.dir/splitter.cpp.o.d"
  "CMakeFiles/ccd_data.dir/trace.cpp.o"
  "CMakeFiles/ccd_data.dir/trace.cpp.o.d"
  "libccd_data.a"
  "libccd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
