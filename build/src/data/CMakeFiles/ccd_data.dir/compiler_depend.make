# Empty compiler generated dependencies file for ccd_data.
# This may be replaced when dependencies are built.
