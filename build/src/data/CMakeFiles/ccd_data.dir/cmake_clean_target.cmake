file(REMOVE_RECURSE
  "libccd_data.a"
)
