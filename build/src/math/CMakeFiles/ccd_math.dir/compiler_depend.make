# Empty compiler generated dependencies file for ccd_math.
# This may be replaced when dependencies are built.
