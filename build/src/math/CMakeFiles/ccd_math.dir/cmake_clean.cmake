file(REMOVE_RECURSE
  "CMakeFiles/ccd_math.dir/linalg.cpp.o"
  "CMakeFiles/ccd_math.dir/linalg.cpp.o.d"
  "CMakeFiles/ccd_math.dir/matrix.cpp.o"
  "CMakeFiles/ccd_math.dir/matrix.cpp.o.d"
  "CMakeFiles/ccd_math.dir/optimize.cpp.o"
  "CMakeFiles/ccd_math.dir/optimize.cpp.o.d"
  "CMakeFiles/ccd_math.dir/piecewise.cpp.o"
  "CMakeFiles/ccd_math.dir/piecewise.cpp.o.d"
  "CMakeFiles/ccd_math.dir/polyfit.cpp.o"
  "CMakeFiles/ccd_math.dir/polyfit.cpp.o.d"
  "CMakeFiles/ccd_math.dir/polynomial.cpp.o"
  "CMakeFiles/ccd_math.dir/polynomial.cpp.o.d"
  "libccd_math.a"
  "libccd_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
