file(REMOVE_RECURSE
  "libccd_math.a"
)
