
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/linalg.cpp" "src/math/CMakeFiles/ccd_math.dir/linalg.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/linalg.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/ccd_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/optimize.cpp" "src/math/CMakeFiles/ccd_math.dir/optimize.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/optimize.cpp.o.d"
  "/root/repo/src/math/piecewise.cpp" "src/math/CMakeFiles/ccd_math.dir/piecewise.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/piecewise.cpp.o.d"
  "/root/repo/src/math/polyfit.cpp" "src/math/CMakeFiles/ccd_math.dir/polyfit.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/polyfit.cpp.o.d"
  "/root/repo/src/math/polynomial.cpp" "src/math/CMakeFiles/ccd_math.dir/polynomial.cpp.o" "gcc" "src/math/CMakeFiles/ccd_math.dir/polynomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
