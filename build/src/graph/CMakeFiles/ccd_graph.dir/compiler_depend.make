# Empty compiler generated dependencies file for ccd_graph.
# This may be replaced when dependencies are built.
