file(REMOVE_RECURSE
  "libccd_graph.a"
)
