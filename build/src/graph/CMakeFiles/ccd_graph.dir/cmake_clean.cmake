file(REMOVE_RECURSE
  "CMakeFiles/ccd_graph.dir/components.cpp.o"
  "CMakeFiles/ccd_graph.dir/components.cpp.o.d"
  "CMakeFiles/ccd_graph.dir/graph.cpp.o"
  "CMakeFiles/ccd_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ccd_graph.dir/union_find.cpp.o"
  "CMakeFiles/ccd_graph.dir/union_find.cpp.o.d"
  "libccd_graph.a"
  "libccd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
