# Empty dependencies file for ccd_contract.
# This may be replaced when dependencies are built.
