file(REMOVE_RECURSE
  "libccd_contract.a"
)
