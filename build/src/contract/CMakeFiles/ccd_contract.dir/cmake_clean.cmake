file(REMOVE_RECURSE
  "CMakeFiles/ccd_contract.dir/baselines.cpp.o"
  "CMakeFiles/ccd_contract.dir/baselines.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/bounds.cpp.o"
  "CMakeFiles/ccd_contract.dir/bounds.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/budget.cpp.o"
  "CMakeFiles/ccd_contract.dir/budget.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/candidate.cpp.o"
  "CMakeFiles/ccd_contract.dir/candidate.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/contract.cpp.o"
  "CMakeFiles/ccd_contract.dir/contract.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/designer.cpp.o"
  "CMakeFiles/ccd_contract.dir/designer.cpp.o.d"
  "CMakeFiles/ccd_contract.dir/worker_response.cpp.o"
  "CMakeFiles/ccd_contract.dir/worker_response.cpp.o.d"
  "libccd_contract.a"
  "libccd_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
