
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contract/baselines.cpp" "src/contract/CMakeFiles/ccd_contract.dir/baselines.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/baselines.cpp.o.d"
  "/root/repo/src/contract/bounds.cpp" "src/contract/CMakeFiles/ccd_contract.dir/bounds.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/bounds.cpp.o.d"
  "/root/repo/src/contract/budget.cpp" "src/contract/CMakeFiles/ccd_contract.dir/budget.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/budget.cpp.o.d"
  "/root/repo/src/contract/candidate.cpp" "src/contract/CMakeFiles/ccd_contract.dir/candidate.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/candidate.cpp.o.d"
  "/root/repo/src/contract/contract.cpp" "src/contract/CMakeFiles/ccd_contract.dir/contract.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/contract.cpp.o.d"
  "/root/repo/src/contract/designer.cpp" "src/contract/CMakeFiles/ccd_contract.dir/designer.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/designer.cpp.o.d"
  "/root/repo/src/contract/worker_response.cpp" "src/contract/CMakeFiles/ccd_contract.dir/worker_response.cpp.o" "gcc" "src/contract/CMakeFiles/ccd_contract.dir/worker_response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ccd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/effort/CMakeFiles/ccd_effort.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ccd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ccd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
