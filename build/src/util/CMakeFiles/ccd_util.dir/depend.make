# Empty dependencies file for ccd_util.
# This may be replaced when dependencies are built.
