file(REMOVE_RECURSE
  "CMakeFiles/ccd_util.dir/config.cpp.o"
  "CMakeFiles/ccd_util.dir/config.cpp.o.d"
  "CMakeFiles/ccd_util.dir/csv.cpp.o"
  "CMakeFiles/ccd_util.dir/csv.cpp.o.d"
  "CMakeFiles/ccd_util.dir/logging.cpp.o"
  "CMakeFiles/ccd_util.dir/logging.cpp.o.d"
  "CMakeFiles/ccd_util.dir/rng.cpp.o"
  "CMakeFiles/ccd_util.dir/rng.cpp.o.d"
  "CMakeFiles/ccd_util.dir/stats.cpp.o"
  "CMakeFiles/ccd_util.dir/stats.cpp.o.d"
  "CMakeFiles/ccd_util.dir/string_util.cpp.o"
  "CMakeFiles/ccd_util.dir/string_util.cpp.o.d"
  "CMakeFiles/ccd_util.dir/table.cpp.o"
  "CMakeFiles/ccd_util.dir/table.cpp.o.d"
  "CMakeFiles/ccd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ccd_util.dir/thread_pool.cpp.o.d"
  "libccd_util.a"
  "libccd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
