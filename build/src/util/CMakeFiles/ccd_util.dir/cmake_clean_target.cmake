file(REMOVE_RECURSE
  "libccd_util.a"
)
