# Empty dependencies file for label_campaign.
# This may be replaced when dependencies are built.
