file(REMOVE_RECURSE
  "CMakeFiles/label_campaign.dir/label_campaign.cpp.o"
  "CMakeFiles/label_campaign.dir/label_campaign.cpp.o.d"
  "label_campaign"
  "label_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
