# Empty dependencies file for review_campaign.
# This may be replaced when dependencies are built.
