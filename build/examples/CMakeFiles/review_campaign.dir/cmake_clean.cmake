file(REMOVE_RECURSE
  "CMakeFiles/review_campaign.dir/review_campaign.cpp.o"
  "CMakeFiles/review_campaign.dir/review_campaign.cpp.o.d"
  "review_campaign"
  "review_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/review_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
