# Empty compiler generated dependencies file for collusion_forensics.
# This may be replaced when dependencies are built.
