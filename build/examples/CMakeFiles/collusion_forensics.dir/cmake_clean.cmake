file(REMOVE_RECURSE
  "CMakeFiles/collusion_forensics.dir/collusion_forensics.cpp.o"
  "CMakeFiles/collusion_forensics.dir/collusion_forensics.cpp.o.d"
  "collusion_forensics"
  "collusion_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collusion_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
