# Empty dependencies file for dynamic_rounds.
# This may be replaced when dependencies are built.
