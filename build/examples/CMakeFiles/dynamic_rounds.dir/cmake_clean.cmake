file(REMOVE_RECURSE
  "CMakeFiles/dynamic_rounds.dir/dynamic_rounds.cpp.o"
  "CMakeFiles/dynamic_rounds.dir/dynamic_rounds.cpp.o.d"
  "dynamic_rounds"
  "dynamic_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
