file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_classification.dir/bench_ext_classification.cpp.o"
  "CMakeFiles/bench_ext_classification.dir/bench_ext_classification.cpp.o.d"
  "bench_ext_classification"
  "bench_ext_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
