# Empty dependencies file for bench_ext_classification.
# This may be replaced when dependencies are built.
