# Empty dependencies file for bench_fig6_bounds.
# This may be replaced when dependencies are built.
