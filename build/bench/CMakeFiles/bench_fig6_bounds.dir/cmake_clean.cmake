file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bounds.dir/bench_fig6_bounds.cpp.o"
  "CMakeFiles/bench_fig6_bounds.dir/bench_fig6_bounds.cpp.o.d"
  "bench_fig6_bounds"
  "bench_fig6_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
