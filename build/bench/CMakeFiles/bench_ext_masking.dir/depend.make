# Empty dependencies file for bench_ext_masking.
# This may be replaced when dependencies are built.
