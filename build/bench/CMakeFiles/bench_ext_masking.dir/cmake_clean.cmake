file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_masking.dir/bench_ext_masking.cpp.o"
  "CMakeFiles/bench_ext_masking.dir/bench_ext_masking.cpp.o.d"
  "bench_ext_masking"
  "bench_ext_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
