# Empty dependencies file for bench_fig8a_compensation.
# This may be replaced when dependencies are built.
