file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_compensation.dir/bench_fig8a_compensation.cpp.o"
  "CMakeFiles/bench_fig8a_compensation.dir/bench_fig8a_compensation.cpp.o.d"
  "bench_fig8a_compensation"
  "bench_fig8a_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
