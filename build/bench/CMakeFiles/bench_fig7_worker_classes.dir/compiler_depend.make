# Empty compiler generated dependencies file for bench_fig7_worker_classes.
# This may be replaced when dependencies are built.
