file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_communities.dir/bench_table2_communities.cpp.o"
  "CMakeFiles/bench_table2_communities.dir/bench_table2_communities.cpp.o.d"
  "bench_table2_communities"
  "bench_table2_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
