# Empty compiler generated dependencies file for bench_ext_budget.
# This may be replaced when dependencies are built.
