# Empty dependencies file for bench_table3_fitting.
# This may be replaced when dependencies are built.
