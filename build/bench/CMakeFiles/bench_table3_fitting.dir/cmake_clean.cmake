file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fitting.dir/bench_table3_fitting.cpp.o"
  "CMakeFiles/bench_table3_fitting.dir/bench_table3_fitting.cpp.o.d"
  "bench_table3_fitting"
  "bench_table3_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
