# Empty dependencies file for bench_fig8b_mu_sweep.
# This may be replaced when dependencies are built.
