# Empty compiler generated dependencies file for ccdctl.
# This may be replaced when dependencies are built.
