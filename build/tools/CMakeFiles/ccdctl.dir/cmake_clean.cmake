file(REMOVE_RECURSE
  "CMakeFiles/ccdctl.dir/ccdctl.cpp.o"
  "CMakeFiles/ccdctl.dir/ccdctl.cpp.o.d"
  "ccdctl"
  "ccdctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
