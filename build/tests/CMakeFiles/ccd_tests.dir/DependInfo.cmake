
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/contract/baselines_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/baselines_test.cpp.o.d"
  "/root/repo/tests/contract/bounds_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/bounds_test.cpp.o.d"
  "/root/repo/tests/contract/budget_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/budget_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/budget_test.cpp.o.d"
  "/root/repo/tests/contract/candidate_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/candidate_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/candidate_test.cpp.o.d"
  "/root/repo/tests/contract/contract_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/contract_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/contract_test.cpp.o.d"
  "/root/repo/tests/contract/designer_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/designer_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/designer_test.cpp.o.d"
  "/root/repo/tests/contract/worker_response_test.cpp" "tests/CMakeFiles/ccd_tests.dir/contract/worker_response_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/contract/worker_response_test.cpp.o.d"
  "/root/repo/tests/core/equilibrium_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/equilibrium_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/equilibrium_test.cpp.o.d"
  "/root/repo/tests/core/masking_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/masking_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/masking_test.cpp.o.d"
  "/root/repo/tests/core/pipeline_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/pipeline_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/requester_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/requester_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/requester_test.cpp.o.d"
  "/root/repo/tests/core/stackelberg_test.cpp" "tests/CMakeFiles/ccd_tests.dir/core/stackelberg_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/core/stackelberg_test.cpp.o.d"
  "/root/repo/tests/data/analytics_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/analytics_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/analytics_test.cpp.o.d"
  "/root/repo/tests/data/generator_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/generator_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/generator_test.cpp.o.d"
  "/root/repo/tests/data/loader_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/loader_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/loader_test.cpp.o.d"
  "/root/repo/tests/data/metrics_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/metrics_test.cpp.o.d"
  "/root/repo/tests/data/splitter_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/splitter_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/splitter_test.cpp.o.d"
  "/root/repo/tests/data/trace_test.cpp" "tests/CMakeFiles/ccd_tests.dir/data/trace_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/data/trace_test.cpp.o.d"
  "/root/repo/tests/detect/collusion_test.cpp" "tests/CMakeFiles/ccd_tests.dir/detect/collusion_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/detect/collusion_test.cpp.o.d"
  "/root/repo/tests/detect/expert_test.cpp" "tests/CMakeFiles/ccd_tests.dir/detect/expert_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/detect/expert_test.cpp.o.d"
  "/root/repo/tests/detect/malicious_test.cpp" "tests/CMakeFiles/ccd_tests.dir/detect/malicious_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/detect/malicious_test.cpp.o.d"
  "/root/repo/tests/effort/effort_model_test.cpp" "tests/CMakeFiles/ccd_tests.dir/effort/effort_model_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/effort/effort_model_test.cpp.o.d"
  "/root/repo/tests/effort/fitting_test.cpp" "tests/CMakeFiles/ccd_tests.dir/effort/fitting_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/effort/fitting_test.cpp.o.d"
  "/root/repo/tests/graph/components_test.cpp" "tests/CMakeFiles/ccd_tests.dir/graph/components_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/graph/components_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/ccd_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/union_find_test.cpp" "tests/CMakeFiles/ccd_tests.dir/graph/union_find_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/graph/union_find_test.cpp.o.d"
  "/root/repo/tests/integration/contract_properties_test.cpp" "tests/CMakeFiles/ccd_tests.dir/integration/contract_properties_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/integration/contract_properties_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/ccd_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fleet_properties_test.cpp" "tests/CMakeFiles/ccd_tests.dir/integration/fleet_properties_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/integration/fleet_properties_test.cpp.o.d"
  "/root/repo/tests/math/linalg_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/linalg_test.cpp.o.d"
  "/root/repo/tests/math/matrix_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/matrix_test.cpp.o.d"
  "/root/repo/tests/math/optimize_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/optimize_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/optimize_test.cpp.o.d"
  "/root/repo/tests/math/piecewise_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/piecewise_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/piecewise_test.cpp.o.d"
  "/root/repo/tests/math/polyfit_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/polyfit_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/polyfit_test.cpp.o.d"
  "/root/repo/tests/math/polynomial_test.cpp" "tests/CMakeFiles/ccd_tests.dir/math/polynomial_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/math/polynomial_test.cpp.o.d"
  "/root/repo/tests/tasks/campaign_test.cpp" "tests/CMakeFiles/ccd_tests.dir/tasks/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/tasks/campaign_test.cpp.o.d"
  "/root/repo/tests/tasks/labeling_test.cpp" "tests/CMakeFiles/ccd_tests.dir/tasks/labeling_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/tasks/labeling_test.cpp.o.d"
  "/root/repo/tests/util/config_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/config_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/config_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/error_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/error_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/error_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/string_util_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/string_util_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/ccd_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/ccd_tests.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/ccd_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/contract/CMakeFiles/ccd_contract.dir/DependInfo.cmake"
  "/root/repo/build/src/effort/CMakeFiles/ccd_effort.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ccd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ccd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ccd_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
