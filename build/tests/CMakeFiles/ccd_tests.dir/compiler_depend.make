# Empty compiler generated dependencies file for ccd_tests.
# This may be replaced when dependencies are built.
