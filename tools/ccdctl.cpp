// ccdctl — command-line front end to the libccd pipeline.
//
//   ccdctl generate out=<prefix> [preset=small|medium|full] [seed=N]
//       Generate a synthetic review trace and save it as CSV.
//
//   ccdctl inspect trace=<prefix> [threshold=0.5]
//       Dataset statistics, expert coverage, detector quality, and the
//       collusive-community census for a saved trace.
//
//   ccdctl design trace=<prefix>|preset=small|medium|full [mu=1.0]
//          [strategy=dynamic|exclude|fixed] [seed=N]
//          [policy=failfast|quarantine|fallback|bip|bandit|posted]
//          [lenient_load=0|1]
//          [fault_rate=0.0] [fault_seed=0] [out=<contracts.csv>]
//       Run the full contract-design pipeline and (optionally) export the
//       per-worker contracts. `preset` generates the bundled example trace
//       in memory instead of loading CSVs. `policy` selects either the
//       per-stage degradation mode (failfast|quarantine|fallback) or a
//       contract-designer backend (bip|bandit|posted: bandit/posted replay
//       the solved subproblems through the selected online learner and
//       report how much of the designed utility it recovers from scratch),
//       `lenient_load` routes dirty CSVs through the sanitizer, and
//       fault_rate/fault_seed arm the deterministic fault injector (chaos
//       drills).
//
//   ccdctl simulate [rounds=40] [workers=6] [malicious=2] [seed=1]
//          [policy=bip|bandit|posted] [deadline=SECONDS] [checkpoint=FILE]
//          [checkpoint_every=N] [resume=FILE] [threads=N]
//       Multi-round Stackelberg simulation with a mixed fleet. `policy`
//       selects the contract-designer backend (the paper's BiP, or an
//       online learner — see src/policy); it is baked into checkpoints, so
//       combining it with resume= is rejected. `checkpoint` +
//       `checkpoint_every` write crash-safe state every N rounds; `resume`
//       continues a checkpointed run bitwise-identically (optionally with a
//       larger rounds= to extend it); `deadline` bounds the wall clock — an
//       expired run returns its completed prefix, writes a final checkpoint
//       (when configured), and exits 6.
//
//   ccdctl scenario [name=paper|sybil|adaptive|misreport|churn|mixed|all]
//          [policy=dynamic|static|fixed|exclude|all] [overrides...]
//          [recall_floor=0.5] [out=FILE.json]
//       Run the adversarial scenario matrix (src/scenario): each selected
//       scenario x designer policy cell scores requester utility, detector
//       precision/recall against the planted adversaries, and quarantine
//       counts, then checks the matrix shape invariants (dynamic >= the
//       fixed-contract baseline under every adversary, detector recall >=
//       recall_floor). Violations exit 1; out= dumps the cells as JSON.
//
//   ccdctl serve socket=PATH|port=N|gateway=ADDR op=<ping|status|contracts|
//          metrics|health|close|shutdown|join|retire> [session=ID]
//          [spec=SPEC] [shard=NAME] [prometheus=0|1] [out=FILE]
//       One administrative request against a running ccdd daemon or a
//       ccd-gateway front end (gateway=PATH or gateway=HOST:PORT is an
//       alias for socket=/port=; `ccdctl gateway ...` is an alias for
//       `ccdctl serve ...`). op=health prints the load snapshot — on a
//       gateway, aggregated across the alive shards. op=join admits (or
//       rejoins) a shard into a gateway ring at runtime, moving only the
//       sessions whose ring owner changed: spec=NAME=unix:SOCKET[@CKPT_DIR]
//       or NAME=tcp:HOST:PORT[@CKPT_DIR], the ccd-gateway shards= grammar.
//       op=retire shard=NAME gracefully retires one; both are idempotent.
//
//   ccdctl submit socket=PATH|port=N|gateway=ADDR session=ID [to=ROUND]
//          [rounds=40]
//          [workers=6] [malicious=2] [seed=1] [mu=1.0] [batch=1]
//          [deadline=SECONDS] [out=FILE] [close=0|1]
//       Drive a simulation session on a daemon to a round target. The open
//       is idempotent (re-attaches to an existing session, so interrupted
//       submits re-run safely after a daemon restart) and backpressure is
//       retried. `out` exports the posted contracts with full float
//       precision — two runs reaching the same round byte-diff equal.
//
// All arguments are key=value; unknown keys are rejected. One flag is the
// exception: `--metrics[=FILE]` (any command) prints the observability
// summary — per-stage latency percentiles, thread-pool utilization,
// design-cache hit rate — after the command finishes, and with =FILE also
// writes the full registry dump (Prometheus text format when FILE ends in
// .prom, JSON otherwise).
//
// Exit codes mirror the ccd::Error hierarchy (see util/error.hpp):
//   0 success, 1 generic error, 2 usage / ConfigError, 3 DataError,
//   4 MathError, 5 ContractError, 6 deadline expired / cancelled,
//   7 transport authentication failed (CSRV v3 token handshake).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include <unistd.h>

#include "contract/worker_response.hpp"
#include "core/checkpoint.hpp"
#include "core/equilibrium.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/stackelberg.hpp"
#include "policy/policy.hpp"
#include "data/analytics.hpp"
#include "data/generator.hpp"
#include "data/loader.hpp"
#include "data/metrics.hpp"
#include "detect/collusion.hpp"
#include "detect/expert.hpp"
#include "detect/malicious.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/gateway.hpp"
#include "util/cancellation.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace ccd;

int usage() {
  std::fprintf(
      stderr,
      "usage: ccdctl <command> [key=value ...] [--metrics[=FILE]]\n"
      "\n"
      "commands:\n"
      "  generate out=<prefix> [preset=small|medium|full] [seed=N]\n"
      "  inspect  trace=<prefix> [threshold=0.5]\n"
      "  design   trace=<prefix>|preset=small|medium|full [mu=1.0] [seed=N]\n"
      "           [strategy=dynamic|exclude|fixed]\n"
      "           [policy=failfast|quarantine|fallback|bip|bandit|posted]\n"
      "           [lenient_load=0|1]\n"
      "           [fault_rate=0.0] [fault_seed=0] [out=<file.csv>]\n"
      "           [deadline=SECONDS]\n"
      "  simulate [rounds=40] [workers=6] [malicious=2] [seed=1]\n"
      "           [policy=bip|bandit|posted] [deadline=SECONDS]\n"
      "           [checkpoint=FILE] [checkpoint_every=N] [resume=FILE]\n"
      "           [threads=N]\n"
      "  scenario [name=paper|sybil|adaptive|misreport|churn|mixed|all]\n"
      "           [policy=dynamic|static|fixed|exclude|bandit|posted|all]\n"
      "           [workers=N]\n"
      "           [malicious=N] [communities=2,3] [sybil=N] [adaptive=0|1]\n"
      "           [misreport=0|1] [churn_arrival=F] [churn_lifetime=F]\n"
      "           [rounds=N] [seed=N] [recall_floor=0.5] [threads=N]\n"
      "           [out=FILE.json]\n"
      "  serve    socket=PATH|port=N|gateway=ADDR [host=127.0.0.1]\n"
      "           op=ping|status|contracts|metrics|health|close|shutdown\n"
      "              |join|retire\n"
      "           [session=ID] [spec=SPEC] [shard=NAME] [token=SECRET]\n"
      "           [prometheus=0|1] [out=FILE]\n"
      "           (`ccdctl gateway ...` is an alias; op=join admits a shard\n"
      "            at runtime, SPEC = NAME=unix:SOCKET[@CKPT_DIR] |\n"
      "            NAME=tcp:HOST:PORT[@CKPT_DIR]; op=retire shard=NAME)\n"
      "  submit   socket=PATH|port=N|gateway=ADDR [host=127.0.0.1]\n"
      "           session=ID [to=ROUND] [rounds=40] [workers=6]\n"
      "           [malicious=2] [seed=1] [mu=1.0] [batch=1]\n"
      "           [policy=bip|bandit|posted] [token=SECRET]\n"
      "           [deadline=SECONDS] [out=FILE] [close=0|1]\n"
      "\n"
      "shared flags:\n"
      "  preset=small|medium|full   bundled synthetic trace instead of CSVs\n"
      "  deadline=SECONDS           wall-clock budget; expiry exits 6 with\n"
      "                             the completed prefix (simulate: plus a\n"
      "                             final checkpoint when configured)\n"
      "  checkpoint=FILE            crash-safe simulate state (atomic+fsync)\n"
      "  checkpoint_every=N         snapshot every N completed rounds\n"
      "  resume=FILE                continue a checkpointed simulate run\n"
      "                             bitwise-identically (rounds= extends it)\n"
      "  threads=N                  private pool size (0 = shared pool)\n"
      "  gateway=ADDR               serve/submit: ccd-gateway address (PATH\n"
      "                             or HOST:PORT), alias for socket=/port=\n"
      "  token=SECRET               serve/submit: shared secret for the CSRV\n"
      "                             v3 handshake (required by daemons on\n"
      "                             non-loopback TCP; failure exits 7)\n"
      "  --metrics[=FILE]           print the metrics summary after the\n"
      "                             command; with =FILE also dump the full\n"
      "                             registry (.prom -> Prometheus, else "
      "JSON)\n"
      "\n"
      "exit codes: 0 ok, 1 error, 2 usage/config, 3 data, 4 math, "
      "5 contract, 6 deadline, 7 auth\n");
  return 2;
}

data::GeneratorParams preset_by_name(const std::string& name) {
  if (name == "small") return data::GeneratorParams::small();
  if (name == "medium") return data::GeneratorParams::medium();
  if (name == "full") return data::GeneratorParams::amazon2015();
  throw ConfigError("unknown preset '" + name + "'");
}

int cmd_generate(const util::ParamMap& params) {
  const std::string out = params.get_string("out", "");
  data::GeneratorParams gen =
      preset_by_name(params.get_string("preset", "medium"));
  if (params.contains("seed")) {
    gen.seed = static_cast<std::uint64_t>(params.get_int("seed", 42));
  }
  params.assert_all_consumed();
  if (out.empty()) {
    std::fprintf(stderr, "generate: missing out=<prefix>\n");
    return 2;
  }
  const data::ReviewTrace trace = data::generate_trace(gen);
  data::save_trace(trace, out);
  std::printf("wrote %s.{workers,products,reviews}.csv\n", out.c_str());
  std::printf("%s\n", trace.stats().to_string().c_str());
  return 0;
}

int cmd_inspect(const util::ParamMap& params) {
  const std::string prefix = params.get_string("trace", "");
  const double threshold = params.get_double("threshold", 0.5);
  params.assert_all_consumed();
  if (prefix.empty()) {
    std::fprintf(stderr, "inspect: missing trace=<prefix>\n");
    return 2;
  }
  const data::ReviewTrace trace = data::load_trace(prefix);
  std::printf("trace: %s\n", trace.stats().to_string().c_str());

  const data::WorkerMetrics metrics(trace);
  const detect::ExpertPanel experts(trace, metrics);
  std::printf("experts: %zu (%.1f%% product coverage)\n",
              experts.experts().size(), 100.0 * experts.coverage());

  const detect::MaliciousDetector detector(trace, experts);
  const auto quality = detector.evaluate(trace, threshold);
  std::printf("detector @ %.2f: precision %.3f recall %.3f F1 %.3f\n",
              threshold, quality.precision(), quality.recall(), quality.f1());

  const detect::CollusionResult detected =
      detect::cluster_collusive_workers(trace, detector.flagged(threshold));
  std::printf("detected collusion: %s\n",
              detect::census(detected).to_string().c_str());
  const detect::CollusionResult truth =
      detect::cluster_ground_truth_malicious(trace);
  std::printf("ground-truth collusion: %s\n",
              detect::census(truth).to_string().c_str());

  std::printf("\ndistributions:\n%s",
              data::render_distributions(data::trace_distributions(trace))
                  .c_str());
  const auto inflated = data::most_inflated_products(trace, 5, 3);
  if (!inflated.empty()) {
    std::printf("\nmost score-inflated products (audit candidates):\n");
    for (const data::ProductSummary& p : inflated) {
      std::printf("  product %u: %zu reviews, score %.2f vs quality %.2f "
                  "(+%.2f), malicious share %.0f%%\n",
                  p.id, p.reviews, p.mean_score, p.true_quality,
                  p.score_inflation, 100.0 * p.malicious_share);
    }
  }
  return 0;
}

core::FaultPolicy policy_by_name(const std::string& name) {
  if (name == "failfast") return core::FaultPolicy::fail_fast();
  if (name == "quarantine") return core::FaultPolicy::quarantine();
  if (name == "fallback") return core::FaultPolicy::fallback();
  throw ConfigError(
      "unknown policy '" + name +
      "' (expected failfast|quarantine|fallback|bip|bandit|posted)");
}

/// design's policy= key is a union: the per-stage degradation modes above,
/// or a contract-designer backend from src/policy.
bool is_designer_policy(const std::string& name) {
  return name == "bip" || name == "bandit" || name == "posted";
}

/// policy=bandit|posted post-pass: replay the pipeline's solved subproblems
/// through the selected online learner — a fixed 96-round deterministic
/// loop against exact worker best responses — and report how much of the
/// designed (BiP) utility the learner recovers from scratch.
void design_policy_refinement(const core::PipelineResult& result,
                              policy::Kind kind) {
  std::vector<policy::WorkerView> views;
  double designed = 0.0;
  for (const core::SubproblemOutcome& sub : result.subproblems) {
    if (sub.design.contract.is_zero()) continue;
    policy::WorkerView view;
    view.psi = sub.spec.psi;
    view.beta = sub.spec.incentives.beta;
    view.omega = sub.spec.incentives.omega;
    view.weight = sub.spec.weight;
    view.mu = sub.spec.mu;
    view.intervals = sub.spec.intervals;
    views.push_back(view);
    designed += sub.design.requester_utility;
  }
  if (views.empty()) {
    std::printf("online refinement (%s): no solved subproblems to refine\n",
                policy::to_string(kind));
    return;
  }
  const std::size_t n = views.size();
  policy::PolicyConfig config;
  config.kind = kind;
  const std::unique_ptr<policy::Policy> learner = policy::make_policy(config);
  util::Rng rng(17);
  std::vector<contract::Contract> contracts(n);
  constexpr std::size_t kRounds = 96;
  const std::size_t window = kRounds / 4;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t t = 0; t < kRounds; ++t) {
    policy::PostEnv env;
    learner->post(t, true, views, contracts, rng, env);
    std::vector<policy::RoundOutcome> outcomes(n);
    double round_utility = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      contract::WorkerIncentives inc;
      inc.beta = views[i].beta;
      inc.omega = views[i].omega;
      const contract::BestResponse response =
          contract::best_response(contracts[i], views[i].psi, inc);
      outcomes[i].active = true;
      outcomes[i].feedback = response.feedback;
      outcomes[i].reward = views[i].weight * response.feedback -
                           views[i].mu * response.compensation;
      round_utility += outcomes[i].reward;
    }
    learner->observe(t, outcomes, rng);
    if (t < window) early += round_utility;
    if (t >= kRounds - window) late += round_utility;
  }
  std::printf(
      "online refinement (%s, %zu rounds, %zu worker(s)): per-round utility "
      "%.3f (first quarter) -> %.3f (last quarter), designed bip %.3f "
      "(%.1f%% recovered)\n",
      policy::to_string(kind), kRounds, n,
      early / static_cast<double>(window),
      late / static_cast<double>(window), designed,
      designed > 0.0
          ? 100.0 * (late / static_cast<double>(window)) / designed
          : 0.0);
}

core::PricingStrategy strategy_by_name(const std::string& name) {
  if (name == "dynamic") return core::PricingStrategy::kDynamicContract;
  if (name == "exclude") return core::PricingStrategy::kExcludeMalicious;
  if (name == "fixed") return core::PricingStrategy::kFixedPayment;
  throw ConfigError("unknown strategy '" + name + "'");
}

void export_contracts(const core::PipelineResult& result,
                      const std::string& path) {
  util::CsvWriter writer(path);
  writer.write_row({"worker", "excluded", "k_opt", "effort", "feedback",
                    "compensation", "knot_feedback", "knot_payment"});
  for (const core::WorkerOutcome& w : result.workers) {
    const core::SubproblemOutcome& sub = result.subproblems[w.subproblem];
    std::string knots;
    std::string payments;
    const contract::Contract& c = sub.design.contract;
    for (std::size_t l = 0; !c.is_zero() && l <= c.intervals(); ++l) {
      if (l > 0) {
        knots += ';';
        payments += ';';
      }
      knots += util::format_double(c.knot(l), 4);
      payments += util::format_double(c.payment(l), 4);
    }
    writer.write_row({std::to_string(w.id), w.excluded ? "1" : "0",
                      std::to_string(sub.design.k_opt),
                      util::format_double(w.effort, 4),
                      util::format_double(w.feedback, 4),
                      util::format_double(w.compensation, 4), knots,
                      payments});
  }
}

int cmd_design(const util::ParamMap& params) {
  const std::string prefix = params.get_string("trace", "");
  const std::string preset = params.get_string("preset", "");
  const double mu = params.get_double("mu", 1.0);
  const std::string strategy = params.get_string("strategy", "dynamic");
  const std::string policy = params.get_string("policy", "failfast");
  const bool lenient_load = params.get_bool("lenient_load", false);
  const double deadline_s = params.get_double("deadline", 0.0);
  const bool has_deadline = params.contains("deadline");
  const double fault_rate = params.get_double("fault_rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(params.get_int("fault_seed", 0));
  const std::string out = params.get_string("out", "");
  data::GeneratorParams gen;
  if (!preset.empty()) {
    gen = preset_by_name(preset);
    if (params.contains("seed")) {
      gen.seed = static_cast<std::uint64_t>(
          params.get_int("seed", static_cast<long long>(gen.seed)));
    }
  }
  params.assert_all_consumed();
  if (prefix.empty() == preset.empty()) {
    std::fprintf(stderr,
                 "design: need exactly one of trace=<prefix> or "
                 "preset=small|medium|full\n");
    return 2;
  }

  core::PipelineConfig config;
  config.requester.mu = mu;
  config.strategy = strategy_by_name(strategy);
  // Designer-backend names keep the default fail-fast fault handling; the
  // learner pass runs after the pipeline.
  config.faults = is_designer_policy(policy) ? core::FaultPolicy::fail_fast()
                                             : policy_by_name(policy);

  util::CancellationToken cancel_token;
  if (has_deadline) {
    cancel_token.set_deadline(util::Deadline::after(deadline_s));
    config.cancel = &cancel_token;
  }

  data::ReviewTrace trace;
  if (!preset.empty()) {
    trace = data::generate_trace(gen);
    std::printf("generated preset '%s': %s\n", preset.c_str(),
                trace.stats().to_string().c_str());
  } else if (lenient_load) {
    data::SanitizedTrace sanitized =
        data::load_trace_sanitized_retrying(prefix, config.sanitize);
    if (!sanitized.report.clean()) {
      std::printf("%s\n", sanitized.report.to_string().c_str());
    }
    config.load_report = sanitized.report;
    trace = std::move(sanitized.trace);
  } else {
    trace = data::load_trace_retrying(prefix);
  }

  if (fault_rate > 0.0) {
    util::FaultInjectorConfig chaos;
    chaos.enabled = true;
    chaos.seed = fault_seed;
    chaos.rate = fault_rate;
    util::FaultInjector::instance().configure(chaos);
    std::printf("fault injector armed: rate=%.3f seed=%llu\n", fault_rate,
                static_cast<unsigned long long>(fault_seed));
  }
  const core::PipelineResult result = core::run_pipeline(trace, config);
  if (fault_rate > 0.0) {
    std::printf("fault injector: %zu fault(s) fired\n",
                util::FaultInjector::instance().total_injected());
    util::FaultInjector::instance().disable();
  }
  if (result.health.degraded()) {
    std::printf("%s\n", result.health.to_string().c_str());
  }

  std::printf("%s\n", core::describe_pipeline_result(result).c_str());
  std::printf("%s\n",
              core::render_class_table(core::compensation_by_class(result),
                                       "comp")
                  .c_str());

  // Certify the designed contracts before posting them.
  const core::FleetAudit audit = core::audit_pipeline(result);
  std::printf("equilibrium audit: %zu/%zu contracts audited, %s (max worker "
              "regret %.2e, min participation margin %.2e)\n",
              audit.audited, audit.subproblems,
              audit.clean() ? "all IC/IR clean" : "VIOLATIONS FOUND",
              audit.max_worker_regret, audit.min_participation_margin);
  if (is_designer_policy(policy) && policy != "bip") {
    design_policy_refinement(result, policy::kind_from_string(policy));
  }
  if (!out.empty()) {
    export_contracts(result, out);
    std::printf("wrote per-worker contracts to %s\n", out.c_str());
  }
  if (result.health.cancelled) {
    std::printf("deadline expired (%s): partial result, %zu subproblem(s) "
                "left unsolved\n",
                util::to_string(result.health.cancel_reason),
                result.health.unsolved_subproblems);
    return ccd::exit_code(ccd::ErrorCode::kDeadline);
  }
  return 0;
}

int cmd_simulate(const util::ParamMap& params) {
  const bool has_rounds = params.contains("rounds");
  const auto rounds = static_cast<std::size_t>(params.get_int("rounds", 40));
  const auto n_workers = static_cast<std::size_t>(params.get_int("workers", 6));
  const auto n_malicious =
      static_cast<std::size_t>(params.get_int("malicious", 2));
  const auto seed = static_cast<std::uint64_t>(params.get_int("seed", 1));
  const double deadline_s = params.get_double("deadline", 0.0);
  const bool has_deadline = params.contains("deadline");
  const std::string checkpoint_path = params.get_string("checkpoint", "");
  const auto checkpoint_every =
      static_cast<std::size_t>(params.get_int("checkpoint_every", 0));
  const std::string resume_path = params.get_string("resume", "");
  const auto threads = static_cast<std::size_t>(params.get_int("threads", 0));
  const bool has_policy = params.contains("policy");
  const std::string policy_name = params.get_string("policy", "bip");
  params.assert_all_consumed();
  if (n_malicious > n_workers) {
    std::fprintf(stderr, "simulate: malicious > workers\n");
    return 2;
  }
  if (has_policy && !resume_path.empty()) {
    std::fprintf(stderr,
                 "simulate: policy= is baked into the checkpoint and cannot "
                 "be combined with resume=\n");
    return 2;
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    std::fprintf(stderr, "simulate: checkpoint_every needs checkpoint=FILE\n");
    return 2;
  }

  util::CancellationToken cancel_token;
  const util::CancellationToken* cancel = nullptr;
  if (has_deadline) {
    cancel_token.set_deadline(util::Deadline::after(deadline_s));
    cancel = &cancel_token;
  }

  core::SimResult result;
  if (!resume_path.empty()) {
    core::SimCheckpoint checkpoint = core::load_checkpoint(resume_path);
    // Fleet/seed params are baked into the checkpoint; rounds= may extend
    // the run, and checkpoint/threads knobs may be overridden.
    if (has_rounds) checkpoint.config.rounds = rounds;
    if (!checkpoint_path.empty()) {
      checkpoint.config.checkpoint_path = checkpoint_path;
      checkpoint.config.checkpoint_every =
          checkpoint_every > 0 ? checkpoint_every
                               : checkpoint.config.checkpoint_every;
    }
    if (threads > 0) checkpoint.config.threads = threads;
    std::printf("resuming from %s: %zu/%zu round(s) done\n",
                resume_path.c_str(), checkpoint.next_round,
                checkpoint.config.rounds);
    result = core::StackelbergSimulator(checkpoint).run(cancel);
  } else {
    const std::vector<core::SimWorkerSpec> fleet =
        core::preset_fleet(n_workers, n_malicious);
    core::SimConfig config;
    config.rounds = rounds;
    config.seed = seed;
    config.checkpoint_path = checkpoint_path;
    config.checkpoint_every = checkpoint_every;
    config.threads = threads;
    config.policy.kind = policy::kind_from_string(policy_name);
    result = core::StackelbergSimulator(fleet, config).run(cancel);
  }

  // Sample ~12 evenly spaced completed rounds, always including the final
  // one (a step-aligned loop used to drop it whenever rounds % step != 1).
  util::TextTable table({"round", "requester utility", "total pay"});
  const std::size_t done = result.rounds.size();
  if (done > 0) {
    const std::size_t step = std::max<std::size_t>(1, done / 12);
    for (std::size_t t = 0; t < done; t += step) {
      table.add_row({std::to_string(t),
                     util::format_double(result.rounds[t].requester_utility, 3),
                     util::format_double(result.rounds[t].total_compensation,
                                         3)});
    }
    if ((done - 1) % step != 0) {
      const std::size_t t = done - 1;
      table.add_row({std::to_string(t),
                     util::format_double(result.rounds[t].requester_utility, 3),
                     util::format_double(result.rounds[t].total_compensation,
                                         3)});
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf("cumulative requester utility: %.3f\n",
              result.cumulative_requester_utility);
  if (result.cancelled) {
    const std::string where =
        checkpoint_path.empty() ? "" : "; checkpoint: " + checkpoint_path;
    std::printf("simulation cancelled (%s) after %zu round(s)%s\n",
                util::to_string(result.cancel_reason), done, where.c_str());
    return ccd::exit_code(ccd::ErrorCode::kDeadline);
  }
  return 0;
}

serve::Client connect_client(const util::ParamMap& params) {
  std::string socket = params.get_string("socket", "");
  std::string host = params.get_string("host", "127.0.0.1");
  long long port = params.get_int("port", -1);
  // gateway=PATH (unix socket) or gateway=HOST:PORT — alias for
  // socket=/host=/port=, so serve/submit invocations read naturally when
  // the peer is a ccd-gateway front end instead of a single ccdd.
  const std::string gateway = params.get_string("gateway", "");
  if (!gateway.empty()) {
    const std::size_t colon = gateway.rfind(':');
    if (colon == std::string::npos) {
      socket = gateway;
    } else {
      host = gateway.substr(0, colon);
      char* end = nullptr;
      port = std::strtol(gateway.c_str() + colon + 1, &end, 10);
      if (end == nullptr || *end != '\0' || port < 0) {
        throw ConfigError("bad gateway address '" + gateway +
                          "' (want PATH or HOST:PORT)");
      }
    }
  }
  serve::ClientOptions options;
  options.auth_token = params.get_string("token", "");
  if (!socket.empty()) return serve::Client::connect_unix(socket, options);
  if (port >= 0) {
    return serve::Client::connect_tcp(host, static_cast<int>(port), options);
  }
  throw ConfigError(
      "need socket=PATH, port=N, or gateway=ADDR to reach a daemon");
}

/// Shortest round-trip decimal rendering: two equal doubles produce equal
/// text, so contract exports from bitwise-identical runs byte-diff equal.
std::string full_precision(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void export_serve_contracts(const std::vector<contract::Contract>& contracts,
                            const std::string& path) {
  util::CsvWriter writer(path);
  writer.write_row({"worker", "intervals", "knots", "payments"});
  for (std::size_t i = 0; i < contracts.size(); ++i) {
    const contract::Contract& c = contracts[i];
    std::string knots;
    std::string payments;
    for (std::size_t l = 0; !c.is_zero() && l <= c.intervals(); ++l) {
      if (l > 0) {
        knots += ';';
        payments += ';';
      }
      knots += full_precision(c.knot(l));
      payments += full_precision(c.payment(l));
    }
    writer.write_row({std::to_string(i),
                      std::to_string(c.is_zero() ? 0 : c.intervals()), knots,
                      payments});
  }
}

void print_session_status(const std::string& session,
                          const serve::SessionStatus& status) {
  std::printf("session %s: round %llu/%llu, %llu worker(s), cumulative "
              "requester utility %.3f%s\n",
              session.c_str(),
              static_cast<unsigned long long>(status.next_round),
              static_cast<unsigned long long>(status.rounds),
              static_cast<unsigned long long>(status.workers),
              status.cumulative_requester_utility,
              status.finished ? " (finished)" : "");
}

int cmd_scenario(const util::ParamMap& params) {
  const std::string name = params.get_string("name", "all");
  const std::string policy_name = params.get_string("policy", "all");
  const std::string out = params.get_string("out", "");
  const double recall_floor = params.get_double("recall_floor", 0.5);
  scenario::RunOptions options;
  options.threads = static_cast<std::size_t>(params.get_int("threads", 0));

  std::vector<scenario::ScenarioSpec> specs;
  if (name == "all") {
    specs = scenario::ScenarioSpec::matrix();
  } else {
    specs.push_back(scenario::ScenarioSpec::preset(name));
  }
  for (scenario::ScenarioSpec& spec : specs) spec.apply_params(params);
  params.assert_all_consumed();

  std::vector<scenario::Policy> policies;
  if (policy_name == "all") {
    policies = scenario::all_policies();
  } else {
    policies.push_back(scenario::policy_from_string(policy_name));
  }

  scenario::MatrixResult matrix;
  std::printf("%-10s %-8s %12s %12s %10s %10s %10s %6s %6s\n", "scenario",
              "policy", "utility", "comp", "det_prec", "det_rec", "comm_rec",
              "quar", "excl");
  for (const scenario::ScenarioSpec& spec : specs) {
    for (const scenario::Policy policy : policies) {
      const scenario::ScenarioCell cell =
          scenario::run_cell(spec, policy, options);
      std::printf("%-10s %-8s %12.3f %12.3f %10.3f %10.3f %10.3f %6zu %6zu\n",
                  cell.scenario.c_str(), scenario::to_string(cell.policy),
                  cell.score.requester_utility, cell.score.total_compensation,
                  cell.score.detector_precision, cell.score.detector_recall,
                  cell.score.community_recall, cell.score.quarantined,
                  cell.score.excluded);
      matrix.cells.push_back(cell);
    }
  }

  if (!out.empty()) {
    std::ofstream file(out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "scenario: cannot open '%s' for writing\n",
                   out.c_str());
      return 1;
    }
    file << matrix.to_json();
    std::printf("wrote %s\n", out.c_str());
  }

  const std::vector<std::string> violations =
      matrix.violations(recall_floor);
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "scenario: INVARIANT VIOLATED: %s\n",
                 violation.c_str());
  }
  if (violations.empty()) {
    std::printf("scenario: all invariants hold (%zu cells)\n",
                matrix.cells.size());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_serve(const util::ParamMap& params) {
  const std::string op = params.get_string("op", "ping");
  const std::string session = params.get_string("session", "");
  const std::string spec_text = params.get_string("spec", "");
  const std::string shard_name = params.get_string("shard", "");
  const bool prometheus = params.get_bool("prometheus", false);
  const std::string out = params.get_string("out", "");
  serve::Client client = connect_client(params);
  params.assert_all_consumed();

  if (op == "join") {
    if (spec_text.empty()) {
      std::fprintf(stderr,
                   "serve: op=join needs spec=NAME=unix:SOCKET[@CKPT_DIR] | "
                   "NAME=tcp:HOST:PORT[@CKPT_DIR]\n");
      return 2;
    }
    const serve::ShardSpec spec = serve::ShardSpec::parse(spec_text);
    std::printf("joined shard '%s': %s\n", spec.name.c_str(),
                client.join_shard(spec.to_target()).c_str());
    return 0;
  }
  if (op == "retire") {
    if (shard_name.empty()) {
      std::fprintf(stderr, "serve: op=retire needs shard=NAME\n");
      return 2;
    }
    std::printf("retired shard '%s': %s\n", shard_name.c_str(),
                client.retire_shard(shard_name).c_str());
    return 0;
  }

  if (op == "ping") {
    std::printf("%s\n", client.ping().c_str());
    return 0;
  }
  if (op == "metrics") {
    const std::string text = client.metrics(prometheus);
    if (out.empty()) {
      std::printf("%s", text.c_str());
    } else {
      std::ofstream stream(out);
      if (!stream) {
        std::fprintf(stderr, "serve: cannot write %s\n", out.c_str());
        return 2;
      }
      stream << text;
      std::printf("wrote daemon metrics to %s\n", out.c_str());
    }
    return 0;
  }
  if (op == "shutdown") {
    client.shutdown_server();
    std::printf("daemon draining\n");
    return 0;
  }
  if (op == "health") {
    const serve::HealthInfo health = client.health();
    std::printf("sessions %llu/%llu, queue %llu/%llu%s\n",
                static_cast<unsigned long long>(health.sessions_open),
                static_cast<unsigned long long>(health.max_sessions),
                static_cast<unsigned long long>(health.queue_depth),
                static_cast<unsigned long long>(health.queue_capacity),
                health.draining ? ", draining" : "");
    return 0;
  }
  if (session.empty()) {
    std::fprintf(stderr, "serve: op=%s needs session=ID\n", op.c_str());
    return 2;
  }
  if (op == "status") {
    print_session_status(session, client.status(session));
    return 0;
  }
  if (op == "contracts") {
    const std::vector<contract::Contract> contracts =
        client.contracts(session);
    if (!out.empty()) {
      export_serve_contracts(contracts, out);
      std::printf("wrote %zu contract(s) to %s\n", contracts.size(),
                  out.c_str());
    } else {
      for (std::size_t i = 0; i < contracts.size(); ++i) {
        const contract::Contract& c = contracts[i];
        std::printf("worker %zu: %s\n", i,
                    c.is_zero() ? "zero contract"
                                : (std::to_string(c.intervals()) +
                                   " interval(s), top payment " +
                                   util::format_double(
                                       c.payment(c.intervals()), 4))
                                      .c_str());
      }
    }
    return 0;
  }
  if (op == "close") {
    print_session_status(session, client.close_session(session));
    return 0;
  }
  std::fprintf(stderr, "serve: unknown op '%s'\n", op.c_str());
  return 2;
}

int cmd_submit(const util::ParamMap& params) {
  const std::string session = params.get_string("session", "");
  const auto rounds = static_cast<std::uint64_t>(params.get_int("rounds", 40));
  const auto to = static_cast<std::uint64_t>(
      params.get_int("to", static_cast<long long>(rounds)));
  const auto batch = static_cast<std::uint64_t>(params.get_int("batch", 1));
  const double deadline_s = params.get_double("deadline", 0.0);
  const std::string out = params.get_string("out", "");
  const bool close = params.get_bool("close", false);

  serve::OpenParams open;
  open.mode = serve::SessionMode::kSimulation;
  open.rounds = rounds;
  open.workers = static_cast<std::uint64_t>(params.get_int("workers", 6));
  open.malicious = static_cast<std::uint64_t>(params.get_int("malicious", 2));
  open.seed = static_cast<std::uint64_t>(params.get_int("seed", 1));
  open.mu = params.get_double("mu", 1.0);
  open.policy = policy::kind_from_string(params.get_string("policy", "bip"));
  open.allow_existing = true;  // idempotent: re-attach after interruption

  serve::Client client = connect_client(params);
  params.assert_all_consumed();
  if (session.empty()) {
    std::fprintf(stderr, "submit: missing session=ID\n");
    return 2;
  }
  if (batch == 0) {
    std::fprintf(stderr, "submit: batch must be >= 1\n");
    return 2;
  }
  const auto deadline_ms = static_cast<std::uint32_t>(deadline_s * 1000.0);

  serve::SessionStatus status = client.open(session, open, deadline_ms);
  const std::uint64_t target = std::min<std::uint64_t>(to, status.rounds);
  while (status.next_round < target) {
    const serve::Client::AdvanceResult step = client.advance(
        session, std::min<std::uint64_t>(batch, target - status.next_round),
        deadline_ms);
    if (step.backpressure || step.unavailable) {
      // Explicit overload signal, or a gateway with every shard down
      // (a rolling restart): retry, don't pile on.
      ::usleep(20 * 1000);
      continue;
    }
    status = step.session;
    if (step.deadline_expired) {
      print_session_status(session, status);
      std::printf("submit: deadline expired; completed rounds are retained "
                  "server-side\n");
      return ccd::exit_code(ccd::ErrorCode::kDeadline);
    }
  }
  print_session_status(session, status);
  if (!out.empty()) {
    export_serve_contracts(client.contracts(session, deadline_ms), out);
    std::printf("wrote contracts to %s\n", out.c_str());
  }
  if (close) {
    client.close_session(session, deadline_ms);
    std::printf("session %s closed\n", session.c_str());
  }
  return 0;
}

/// Print the observability summary (and optionally dump the registry to
/// `file`: Prometheus text when the name ends in .prom, JSON otherwise).
void report_metrics(const std::string& file) {
  namespace metrics = util::metrics;
  if (!metrics::compiled_in()) {
    std::printf("\nmetrics: compiled out (-DCCD_NO_METRICS)\n");
    return;
  }
  const std::string summary = metrics::render_summary();
  std::printf("\n%s", summary.empty() ? "metrics: nothing recorded\n"
                                      : summary.c_str());
  if (file.empty()) return;
  const bool prom =
      file.size() >= 5 && file.compare(file.size() - 5, 5, ".prom") == 0;
  std::ofstream out(file);
  if (!out) {
    std::fprintf(stderr, "ccdctl: cannot write metrics to %s\n", file.c_str());
    return;
  }
  out << (prom ? metrics::to_prometheus() : metrics::to_json());
  std::printf("wrote metrics (%s) to %s\n", prom ? "prometheus" : "json",
              file.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --metrics[=FILE] before key=value parsing (the '=' form would
  // otherwise be misread as a parameter named "--metrics").
  bool want_metrics = false;
  std::string metrics_file;
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      want_metrics = true;
      continue;
    }
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      want_metrics = true;
      metrics_file = argv[i] + 10;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;

  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::ParamMap params =
      util::ParamMap::from_args(argc - 1, argv + 1);
  try {
    int rc = 2;
    if (command == "generate") rc = cmd_generate(params);
    else if (command == "inspect") rc = cmd_inspect(params);
    else if (command == "design") rc = cmd_design(params);
    else if (command == "simulate") rc = cmd_simulate(params);
    else if (command == "scenario") rc = cmd_scenario(params);
    else if (command == "serve") rc = cmd_serve(params);
    else if (command == "gateway") rc = cmd_serve(params);
    else if (command == "submit") rc = cmd_submit(params);
    else return usage();
    if (want_metrics) report_metrics(metrics_file);
    return rc;
  } catch (const ccd::Error& e) {
    std::fprintf(stderr, "ccdctl %s: %s\n", command.c_str(), e.what());
    return ccd::exit_code(e.code());
  }
}
