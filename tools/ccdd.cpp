// ccdd — the contract-design daemon: ccd::serve over a Unix-domain socket
// and/or loopback TCP.
//
//   ccdd socket=PATH | port=N [key=value ...]
//       socket=PATH          Unix-domain socket to listen on
//       port=N               loopback TCP port (0 picks one and prints it)
//       threads=4            executor threads draining the admission queue
//       queue=128            admission queue capacity (full -> backpressure)
//       max_sessions=256     open-session cap
//       checkpoint_dir=DIR   per-session crash-safe checkpoints in DIR
//       checkpoint_every=1   snapshot cadence in completed rounds
//       resume=1             restore sessions found in checkpoint_dir at boot
//       idle_ttl=0           idle-session TTL in ms: sessions untouched this
//                            long are checkpointed to disk and evicted (the
//                            slot frees; a later op reloads bitwise-
//                            identically). 0 disables; needs checkpoint_dir
//       io_timeout=10000     per-transfer socket deadline in ms (a stalled
//                            peer drops only its own connection); 0 disables
//       idle_timeout=0       per-connection idle deadline in ms
//       host=127.0.0.1       IPv4 address the TCP listener binds; binding
//                            wider than loopback pairs with token=
//       token=SECRET         shared secret for the CSRV v3 handshake:
//                            non-loopback TCP peers must prove it before
//                            any other op (failure -> exit code 7 client-
//                            side); Unix sockets never require it
//       require_token=0      require the handshake on loopback TCP too; 0 disables
//
// The daemon exits on SIGINT/SIGTERM or a client `shutdown` request; both
// paths drain the admission queue (every acknowledged request is
// answered) and snapshot every open session, so a subsequent boot with
// resume=1 continues each campaign bitwise-identically. A SIGKILL loses at
// most the in-flight round: sessions checkpoint every `checkpoint_every`
// completed rounds.
//
// Exit codes mirror ccdctl: 0 clean shutdown, 2 usage/config errors,
// 3 data errors (e.g. corrupt checkpoint at resume).
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: ccdd socket=PATH | port=N [threads=4] [queue=128]\n"
      "            [max_sessions=256] [checkpoint_dir=DIR] "
      "[checkpoint_every=1]\n"
      "            [resume=1] [idle_ttl=0] [io_timeout=10000] "
      "[idle_timeout=0]\n"
      "            [host=127.0.0.1] [token=SECRET] [require_token=0]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;

  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  try {
    serve::EngineConfig engine_config;
    engine_config.worker_threads =
        static_cast<std::size_t>(params.get_int("threads", 4));
    engine_config.queue_capacity =
        static_cast<std::size_t>(params.get_int("queue", 128));
    engine_config.max_sessions =
        static_cast<std::size_t>(params.get_int("max_sessions", 256));
    engine_config.checkpoint_dir = params.get_string("checkpoint_dir", "");
    engine_config.checkpoint_every =
        static_cast<std::size_t>(params.get_int("checkpoint_every", 1));
    engine_config.idle_ttl_ms =
        static_cast<std::size_t>(params.get_int("idle_ttl", 0));

    serve::ServerConfig server_config;
    server_config.unix_socket = params.get_string("socket", "");
    server_config.tcp_port = static_cast<int>(params.get_int("port", -1));
    server_config.io_timeout_ms =
        static_cast<int>(params.get_int("io_timeout", 10000));
    server_config.idle_timeout_ms =
        static_cast<int>(params.get_int("idle_timeout", 0));
    server_config.tcp_host = params.get_string("host", "127.0.0.1");
    server_config.auth_token = params.get_string("token", "");
    server_config.require_auth = params.get_bool("require_token", false);

    const bool resume = params.get_bool("resume", true);
    params.assert_all_consumed();
    if (server_config.unix_socket.empty() && server_config.tcp_port < 0) {
      return usage();
    }

    if (!engine_config.checkpoint_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(engine_config.checkpoint_dir, ec);
      if (ec) {
        throw ConfigError("cannot create checkpoint_dir '" +
                          engine_config.checkpoint_dir + "': " + ec.message());
      }
    }

    serve::Engine engine(engine_config);
    if (resume && !engine_config.checkpoint_dir.empty()) {
      const serve::ResumeReport report = engine.resume_sessions();
      if (report.restored > 0) {
        std::printf("ccdd: resumed %zu session(s) from %s\n", report.restored,
                    engine_config.checkpoint_dir.c_str());
      }
      for (const serve::ResumeReport::Skipped& skipped : report.skipped) {
        std::fprintf(stderr, "ccdd: skipped unreadable checkpoint %s: %s\n",
                     skipped.path.c_str(), skipped.error.c_str());
      }
    }

    serve::Server server(std::move(server_config), engine);
    if (!params.get_string("socket", "").empty()) {
      std::printf("ccdd: listening on unix:%s\n",
                  params.get_string("socket", "").c_str());
    }
    if (server.tcp_port() >= 0) {
      std::printf("ccdd: listening on tcp:%s:%d\n",
                  params.get_string("host", "127.0.0.1").c_str(),
                  server.tcp_port());
    }
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    while (g_signalled == 0 && !engine.shutdown_requested()) {
      ::usleep(100 * 1000);
    }
    std::printf("ccdd: %s, draining\n",
                g_signalled != 0 ? "signal received" : "shutdown requested");

    server.stop();   // no new connections / requests
    engine.stop();   // drain queue, answer everything, checkpoint sessions
    std::printf("ccdd: %zu session(s) checkpointed, bye\n",
                engine.session_count());
    return 0;
  } catch (const ccd::Error& e) {
    std::fprintf(stderr, "ccdd: %s\n", e.what());
    return ccd::exit_code(e.code());
  }
}
