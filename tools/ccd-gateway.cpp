// ccd-gateway — fault-tolerant sharded front end for a fleet of ccdd
// daemons (serve::Gateway over a Unix-domain socket and/or loopback TCP).
//
//   ccd-gateway socket=PATH | port=N shards=SPEC,SPEC,... [key=value ...]
//       socket=PATH          Unix-domain socket to listen on
//       port=N               loopback TCP port (0 picks one and prints it)
//       shards=SPEC,...      one SPEC per ccdd shard:
//                              NAME=unix:SOCKET[@CKPT_DIR]
//                              NAME=tcp:HOST:PORT[@CKPT_DIR]
//                            CKPT_DIR is the shard's checkpoint_dir; when
//                            given, a dead shard's sessions are restored
//                            onto the survivors from its checkpoints
//       max_inflight=256     concurrent forwards before kBackpressure
//       virtual_nodes=64     consistent-hash ring points per shard
//       io_timeout=10000     per-transfer socket deadline in ms; 0 disables
//       idle_timeout=0       client-connection idle deadline in ms
//       forward_timeout=60000  shard response deadline in ms; 0 disables
//       health_interval=500  shard health-probe cadence in ms; 0 disables
//
// Clients speak to the gateway exactly as to a single ccdd (same wire
// protocol); sessions are consistent-hashed across the shards, a dead
// shard's sessions fail over to the survivors via checkpoint handoff, and
// a client `shutdown` drains the whole fleet. Exit codes mirror ccdd.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/gateway.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: ccd-gateway socket=PATH | port=N shards=SPEC,SPEC,...\n"
      "                   [max_inflight=256] [virtual_nodes=64]\n"
      "                   [io_timeout=10000] [idle_timeout=0]\n"
      "                   [forward_timeout=60000] [health_interval=500]\n"
      "       SPEC: NAME=unix:SOCKET[@CKPT_DIR] | "
      "NAME=tcp:HOST:PORT[@CKPT_DIR]\n");
  return 2;
}

/// Parse one NAME=unix:SOCKET[@DIR] / NAME=tcp:HOST:PORT[@DIR] spec.
ccd::serve::ShardSpec parse_shard(const std::string& spec) {
  using ccd::ConfigError;
  ccd::serve::ShardSpec shard;
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ConfigError("bad shard spec '" + spec + "' (want NAME=TARGET)");
  }
  shard.name = spec.substr(0, eq);
  std::string target = spec.substr(eq + 1);
  const std::size_t at = target.rfind('@');
  if (at != std::string::npos) {
    shard.checkpoint_dir = target.substr(at + 1);
    target = target.substr(0, at);
  }
  if (target.rfind("unix:", 0) == 0) {
    shard.unix_socket = target.substr(5);
  } else if (target.rfind("tcp:", 0) == 0) {
    const std::string addr = target.substr(4);
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("bad shard spec '" + spec + "' (want tcp:HOST:PORT)");
    }
    shard.host = addr.substr(0, colon);
    char* end = nullptr;
    shard.tcp_port =
        static_cast<int>(std::strtol(addr.c_str() + colon + 1, &end, 10));
    if (end == nullptr || *end != '\0' || shard.tcp_port < 0) {
      throw ConfigError("bad shard port in '" + spec + "'");
    }
  } else {
    throw ConfigError("bad shard spec '" + spec +
                      "' (target must start with unix: or tcp:)");
  }
  return shard;
}

std::vector<ccd::serve::ShardSpec> parse_shards(const std::string& list) {
  std::vector<ccd::serve::ShardSpec> shards;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string spec = list.substr(start, comma - start);
    if (!spec.empty()) shards.push_back(parse_shard(spec));
    start = comma + 1;
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;

  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  try {
    serve::GatewayConfig config;
    config.unix_socket = params.get_string("socket", "");
    config.tcp_port = static_cast<int>(params.get_int("port", -1));
    config.shards = parse_shards(params.get_string("shards", ""));
    config.max_inflight =
        static_cast<std::size_t>(params.get_int("max_inflight", 256));
    config.virtual_nodes =
        static_cast<std::size_t>(params.get_int("virtual_nodes", 64));
    config.io_timeout_ms =
        static_cast<int>(params.get_int("io_timeout", 10000));
    config.idle_timeout_ms =
        static_cast<int>(params.get_int("idle_timeout", 0));
    config.forward_timeout_ms =
        static_cast<int>(params.get_int("forward_timeout", 60000));
    config.health_interval_ms =
        static_cast<int>(params.get_int("health_interval", 500));
    params.assert_all_consumed();
    if ((config.unix_socket.empty() && config.tcp_port < 0) ||
        config.shards.empty()) {
      return usage();
    }

    serve::Gateway gateway(std::move(config));
    if (!params.get_string("socket", "").empty()) {
      std::printf("ccd-gateway: listening on unix:%s\n",
                  params.get_string("socket", "").c_str());
    }
    if (gateway.tcp_port() >= 0) {
      std::printf("ccd-gateway: listening on tcp:127.0.0.1:%d\n",
                  gateway.tcp_port());
    }
    std::printf("ccd-gateway: %zu shard(s)\n", gateway.alive_shard_count());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    while (g_signalled == 0 && !gateway.shutdown_requested()) {
      ::usleep(100 * 1000);
    }
    std::printf("ccd-gateway: %s, stopping\n",
                g_signalled != 0 ? "signal received" : "shutdown requested");
    gateway.stop();
    return 0;
  } catch (const ccd::Error& e) {
    std::fprintf(stderr, "ccd-gateway: %s\n", e.what());
    return ccd::exit_code(e.code());
  }
}
