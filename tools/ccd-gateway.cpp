// ccd-gateway — fault-tolerant sharded front end for a fleet of ccdd
// daemons (serve::Gateway over a Unix-domain socket and/or loopback TCP).
//
//   ccd-gateway socket=PATH | port=N shards=SPEC,SPEC,... [key=value ...]
//       socket=PATH          Unix-domain socket to listen on
//       port=N               loopback TCP port (0 picks one and prints it)
//       shards=SPEC,...      one SPEC per ccdd shard:
//                              NAME=unix:SOCKET[@CKPT_DIR]
//                              NAME=tcp:HOST:PORT[@CKPT_DIR]
//                            CKPT_DIR is the shard's checkpoint_dir; when
//                            given, a dead shard's sessions are restored
//                            onto the survivors from its checkpoints
//       max_inflight=256     concurrent forwards before kBackpressure
//       virtual_nodes=64     consistent-hash ring points per shard
//       io_timeout=10000     per-transfer socket deadline in ms; 0 disables
//       idle_timeout=0       client-connection idle deadline in ms
//       forward_timeout=60000  shard response deadline in ms; 0 disables
//       health_interval=500  shard health-probe cadence in ms; 0 disables
//       token=SECRET         shared secret for the CSRV v3 handshake:
//                            non-loopback TCP clients must prove it, and
//                            shard dials offer it (so shards may require
//                            the same token); Unix sockets never require it
//       require_token=0      require the handshake on loopback TCP too
//
// Clients speak to the gateway exactly as to a single ccdd (same wire
// protocol); sessions are consistent-hashed across the shards, a dead
// shard's sessions fail over to the survivors via checkpoint handoff, and
// a client `shutdown` drains the whole fleet. Shards can be admitted or
// retired at runtime (`ccdctl gateway op=join|op=retire`); a join moves
// only the sessions whose ring owner changed. Exit codes mirror ccdd.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/gateway.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: ccd-gateway socket=PATH | port=N shards=SPEC,SPEC,...\n"
      "                   [max_inflight=256] [virtual_nodes=64]\n"
      "                   [io_timeout=10000] [idle_timeout=0]\n"
      "                   [forward_timeout=60000] [health_interval=500]\n"
      "                   [token=SECRET] [require_token=0]\n"
      "       SPEC: NAME=unix:SOCKET[@CKPT_DIR] | "
      "NAME=tcp:HOST:PORT[@CKPT_DIR]\n");
  return 2;
}

std::vector<ccd::serve::ShardSpec> parse_shards(const std::string& list) {
  std::vector<ccd::serve::ShardSpec> shards;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string spec = list.substr(start, comma - start);
    // Same grammar as `ccdctl gateway op=join spec=...` (ShardSpec::parse).
    if (!spec.empty()) shards.push_back(ccd::serve::ShardSpec::parse(spec));
    start = comma + 1;
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccd;

  const util::ParamMap params = util::ParamMap::from_args(argc, argv);
  try {
    serve::GatewayConfig config;
    config.unix_socket = params.get_string("socket", "");
    config.tcp_port = static_cast<int>(params.get_int("port", -1));
    config.shards = parse_shards(params.get_string("shards", ""));
    config.max_inflight =
        static_cast<std::size_t>(params.get_int("max_inflight", 256));
    config.virtual_nodes =
        static_cast<std::size_t>(params.get_int("virtual_nodes", 64));
    config.io_timeout_ms =
        static_cast<int>(params.get_int("io_timeout", 10000));
    config.idle_timeout_ms =
        static_cast<int>(params.get_int("idle_timeout", 0));
    config.forward_timeout_ms =
        static_cast<int>(params.get_int("forward_timeout", 60000));
    config.health_interval_ms =
        static_cast<int>(params.get_int("health_interval", 500));
    config.auth_token = params.get_string("token", "");
    config.require_auth = params.get_bool("require_token", false);
    params.assert_all_consumed();
    if ((config.unix_socket.empty() && config.tcp_port < 0) ||
        config.shards.empty()) {
      return usage();
    }

    serve::Gateway gateway(std::move(config));
    if (!params.get_string("socket", "").empty()) {
      std::printf("ccd-gateway: listening on unix:%s\n",
                  params.get_string("socket", "").c_str());
    }
    if (gateway.tcp_port() >= 0) {
      std::printf("ccd-gateway: listening on tcp:127.0.0.1:%d\n",
                  gateway.tcp_port());
    }
    std::printf("ccd-gateway: %zu shard(s)\n", gateway.alive_shard_count());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    while (g_signalled == 0 && !gateway.shutdown_requested()) {
      ::usleep(100 * 1000);
    }
    std::printf("ccd-gateway: %s, stopping\n",
                g_signalled != 0 ? "signal received" : "shutdown requested");
    gateway.stop();
    return 0;
  } catch (const ccd::Error& e) {
    std::fprintf(stderr, "ccd-gateway: %s\n", e.what());
    return ccd::exit_code(e.code());
  }
}
